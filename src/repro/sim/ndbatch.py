"""Vectorised multi-execution batch engine (numpy matrix rounds).

The round-level batch engine (:mod:`repro.sim.batch`) made thousand-execution
sweeps routine, but its hot loop is still pure Python: one ``sorted()`` +
``fsum`` per process per round per execution.  The algorithms' round structure
— ``mean ∘ select_k ∘ reduce^j`` over a sorted multiset — is exactly a sort +
strided slice + mean over the rows of a matrix, so this engine advances an
entire *block* of executions at once:

* all executions sharing a scenario shape (protocol, ``n``, ``t``, round
  count) are stacked into an ``(executions, n)`` value matrix;
* each round, candidate masks and quorum index tensors are built from the
  per-execution :class:`~repro.net.adversary.RoundFaultModel` and
  :class:`~repro.net.adversary.OmissionPolicy`;
* per-recipient views are gathered into an ``(executions, n, m)`` tensor and
  the approximation step is applied as one ``np.sort(axis=-1)`` + strided
  slice + mean (:func:`repro.core.rounds.approximation_step_block`) — no
  per-process Python loop.

Exact agreement with :mod:`repro.sim.batch`
-------------------------------------------

The engine is differentially pinned against the pure-Python batch engine
(``tests/sim/test_ndbatch_equivalence.py``): identical rounds, message and
bit counts, and outputs/trajectories within ``1e-9`` (the engines may differ
in floating-point summation order — ``math.fsum`` versus numpy's pairwise
summation — but in nothing else).  Three quorum-selection paths keep the
adversary *bit-identical* across engines:

* :class:`~repro.net.adversary.SeededOmission` — its counter-based PRF
  (:func:`~repro.net.adversary.seeded_rank_key`) is re-evaluated here over
  whole ``(executions, recipients, senders)`` uint64 tensors, reproducing the
  scalar keys exactly;
* policies sharing a tensor fault program
  (:meth:`~repro.net.adversary.OmissionPolicy.rank_tensor`, e.g.
  :class:`~repro.net.adversary.DelayRankOmission` over tensor-programmed
  delay models) — executions are grouped by
  :meth:`~repro.net.adversary.OmissionPolicy.tensor_key` and each group is
  ranked with *one* bulk call per round, per-execution variation carried by
  the PRF seed vector;
* policies with only a per-execution vector-friendly ranking
  (:meth:`~repro.net.adversary.OmissionPolicy.rank_block`) — one bulk query
  per execution per round, ranked with a stable lexicographic sort matching
  the scalar tie-breaking;
* everything else falls back to per-recipient
  :meth:`~repro.net.adversary.OmissionPolicy.quorum` calls issued in the
  exact order the pure-Python engine would issue them (rounds ascending,
  recipients ascending), so stateful policies stay reproducible.

Byzantine value strategies must be ``stateless`` (pure functions of
``(round, recipient, observed)``); the engine evaluates them eagerly for
every recipient.  Strategies declaring a tensor program
(:meth:`~repro.net.adversary.ByzantineValueStrategy.tensor_key`) are grouped
by ``(sender, program)`` and answered with one
:meth:`~repro.net.adversary.ByzantineValueStrategy.value_tensor` call per
round per group — Byzantine and anti-convergence rounds issue **zero**
per-execution Python strategy calls (asserted by
``tests/sim/test_fault_tensor_engine.py``).  Stateful strategies and
adaptive round policies raise a documented error pointing at the pure-Python
engine, which supports both.

Results are full :class:`~repro.sim.runner.ExecutionResult` objects (runtime
tag ``"ndbatch"``) with the same schema as the other engines, so the metrics,
convergence-analysis and table pipelines apply unchanged.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.backend import ArrayNamespace, get_namespace
from repro.core.multidim import (
    VectorValidationReport,
    check_box_validity_block,
    normalize_vector_inputs,
    validate_vector_outputs,
)
from repro.core.problem import ProblemInstance, ValidationReport, validate_outputs
from repro.core.protocol import ResilienceError
from repro.core.rounds import AlgorithmBounds, approximation_step_block
from repro.core.termination import (
    FixedRounds,
    RoundPolicy,
    default_round_policy,
    default_vector_round_policy,
)
from repro.net.adversary import (
    SENDER_MASK,
    DelayRankOmission,
    OmissionPolicy,
    RoundFaultModel,
    SeededOmission,
    mix64,
    round_fault_model,
    seeded_rank_key_block,
)
from repro.net.message import Message, message_bits
from repro.net.network import DelayModel, FaultPlan, NetworkStats
from repro.sim.batch import DIRECT_PROTOCOL_BOUNDS, _upfront_rounds
from repro.sim.engine import EngineCapabilityError, capable_engines
from repro.sim.planner import plan_block
from repro.sim.runner import ExecutionResult
from repro.sim.vector import VectorExecutionResult

__all__ = [
    "NDBATCH_PROTOCOLS",
    "run_ndbatch_block",
    "run_ndbatch_protocol",
    "run_vector_block",
]

#: Protocols the vectorised engine supports (the direct protocols; the
#: witness protocol's round-level form lives in the batch engine).
NDBATCH_PROTOCOL_BOUNDS = dict(DIRECT_PROTOCOL_BOUNDS)
NDBATCH_PROTOCOLS = tuple(sorted(NDBATCH_PROTOCOL_BOUNDS))

_SYNCHRONOUS = frozenset({"sync-crash", "sync-byzantine"})

#: Sentinel crash round for processes that never crash (far beyond any block).
_NEVER = np.int64(2**31)

_UINT64_MAX = np.uint64(0xFFFFFFFFFFFFFFFF)


def _seeded_keys(seed_mix: np.ndarray, round_number: int, n: int) -> np.ndarray:
    """Quorum rank keys of one round for a block of seeds.

    ``seed_mix`` has shape ``(E,)``; the result has shape ``(E, n, n)`` with
    ``keys[e, recipient, sender]`` equal to
    :func:`~repro.net.adversary.seeded_rank_key` evaluated scalar-by-scalar —
    one shared vectorised implementation
    (:func:`~repro.net.adversary.seeded_rank_key_block`) serves both this
    engine and :class:`~repro.net.adversary.SeededOmission`'s per-round key
    cache, so the engines' quorums stay identical by construction.  Keys
    embed the sender id in their low bits, so ``np.sort`` of a key row
    followed by masking out the low bits *is* quorum selection (no
    ``argsort`` indirection, no ties possible).
    """
    return seeded_rank_key_block(seed_mix, round_number, n)


class _Block:
    """Per-execution scenario data and array state of one ndbatch block.

    Scenario construction (fault schedules, masks, group partitions) is
    always host-side numpy; :meth:`_to_device` then moves the tensors the
    round loop touches onto the block's array namespace ``xp`` — an identity
    on the numpy float64 default, a dtype cast for float32, a host→device
    copy for GPU backends.
    """

    def __init__(
        self,
        protocol: str,
        inputs_block: Sequence[Sequence[float]],
        t: int,
        epsilon: float,
        round_policy: Optional[RoundPolicy],
        fault_models: Sequence[RoundFaultModel],
        omission_policies: Sequence[OmissionPolicy],
        strict: bool,
        xp: Optional[ArrayNamespace] = None,
    ) -> None:
        self.xp = xp if xp is not None else get_namespace("numpy")
        self.count = len(inputs_block)
        self.n = len(inputs_block[0])
        self.t = t
        self.epsilon = epsilon
        self.protocol = protocol
        self.synchronous = protocol in _SYNCHRONOUS
        self.bounds: AlgorithmBounds = NDBATCH_PROTOCOL_BOUNDS[protocol](self.n, t)
        if strict and not self.bounds.resilience_ok:
            raise ResilienceError(
                f"{self.bounds.name} does not tolerate t={t} faults with n={self.n}"
            )
        self.fault_models = list(fault_models)
        self.policies = list(omission_policies)
        n, count = self.n, self.count

        shared_rounds: Optional[int] = None
        if round_policy is not None:
            shared_rounds = _upfront_rounds(round_policy, self.bounds, epsilon)
            if shared_rounds is None:
                raise EngineCapabilityError(
                    "ndbatch",
                    f"adaptive round policies ({round_policy.describe()}: the "
                    f"engine requires a round count known upfront)",
                    ("batch", "event"),
                )

        self.problems: List[ProblemInstance] = []
        rounds: List[int] = []
        for inputs, model, policy in zip(inputs_block, self.fault_models, self.policies):
            if len(inputs) != n:
                raise ValueError("all executions in a block must share n")
            self.problems.append(
                ProblemInstance(
                    n=n,
                    t=t,
                    epsilon=epsilon,
                    inputs=list(inputs),
                    faulty=model.faulty_ids(n),
                    byzantine=model.byzantine_ids(n),
                )
            )
            if shared_rounds is not None:
                rounds.append(shared_rounds)
            else:
                cell_policy = default_round_policy(self.bounds, inputs, epsilon)
                rounds.append(_upfront_rounds(cell_policy, self.bounds, epsilon))
            policy.reset()
        if len(set(rounds)) > 1:
            raise ValueError(
                f"executions in one ndbatch block must share the round count, got "
                f"{sorted(set(rounds))}; group cells by round count first "
                f"(repro.sim.sweep does this automatically)"
            )
        self.total_rounds = rounds[0] if rounds else 0

        # --- numpy scenario state --------------------------------------
        self.inputs_matrix = np.asarray(inputs_block, dtype=np.float64)
        self.crash_round = np.full((count, n), _NEVER, dtype=np.int64)
        self.crash_deliveries = np.zeros((count, n), dtype=np.int64)
        self.strategy_mask = np.zeros((count, n), dtype=bool)
        self.silent_mask = np.zeros((count, n), dtype=bool)
        self.honest_mask = np.ones((count, n), dtype=bool)
        self.strategy_ids: List[Tuple[int, ...]] = []

        starting = self.inputs_matrix.copy()
        # Strategies grouped by (sender pid, tensor program): every group is
        # answered by ONE value_tensor call per round on a representative
        # instance, with per-execution variation carried by the PRF seed
        # vector — zero per-execution Python strategy calls.  Stateless
        # strategies without a tensor form keep the per-execution
        # value_block/value path.
        strategy_groups: Dict[Tuple[int, tuple], List[int]] = {}
        self.strategy_scalar: List[Tuple[int, int, object]] = []
        for e, model in enumerate(self.fault_models):
            for pid, strategy in model.strategies.items():
                if not getattr(strategy, "stateless", False):
                    raise EngineCapabilityError(
                        "ndbatch",
                        f"stateful Byzantine value strategies "
                        f"({strategy.describe()}: strategies must be stateless "
                        f"— pure functions of round/recipient/observed)",
                        ("batch", "event"),
                    )
                if pid < n:
                    self.strategy_mask[e, pid] = True
                    key = strategy.tensor_key()
                    if key is not None:
                        strategy_groups.setdefault((pid, key), []).append(e)
                    else:
                        self.strategy_scalar.append((e, pid, strategy))
            for pid in model.silent:
                if pid < n:
                    self.silent_mask[e, pid] = True
            self.strategy_ids.append(tuple(sorted(model.strategies)))
            for pid, forged in model.corrupted_inputs.items():
                if pid < n:
                    starting[e, pid] = float(forged)
            for pid, (crash_round, deliveries) in model.crash_schedule.items():
                if pid < n:
                    self.crash_round[e, pid] = crash_round
                    self.crash_deliveries[e, pid] = deliveries
            for pid in self.problems[e].faulty:
                self.honest_mask[e, pid] = False
        self.strategy_tensor_groups: List[Tuple[int, object, np.ndarray, np.ndarray]] = [
            (
                pid,
                self.fault_models[members[0]].strategies[pid],
                np.asarray(members, dtype=np.intp),
                np.asarray(
                    [self.fault_models[e].strategies[pid].tensor_seed() for e in members],
                    dtype=np.uint64,
                ),
            )
            for (pid, _key), members in strategy_groups.items()
        ]
        self.holder_mask = ~self.strategy_mask & ~self.silent_mask
        # Crash schedules only apply to value holders (a Byzantine replacement
        # supersedes a crash point, as in the round_fault_model adapter).
        self.crash_round = np.where(self.holder_mask, self.crash_round, _NEVER)
        self.crash_deliveries = np.where(self.holder_mask, self.crash_deliveries, 0)
        self.values = np.where(self.holder_mask, starting, np.nan)
        self.strategy_counts = self.strategy_mask.sum(axis=1).astype(np.int64)

        # --- quorum-selection mode partition ---------------------------
        # "seeded": every policy is a SeededOmission — keys computed natively
        # in numpy for the whole block.  "tensor": policies sharing a tensor
        # program (rank_tensor) — one bulk ranking per *group* per round,
        # per-execution variation carried by the PRF seed vector.  "ranked":
        # the policy answers rank_block() — one bulk float ranking per
        # execution per round.  "generic": per-recipient Python fallback, in
        # the batch engine's exact query order.
        if n > SENDER_MASK:
            raise ValueError(
                f"quorum rank keys embed the sender id in 16 bits; "
                f"n={n} processes exceed that"
            )
        self.seeded_idx: List[int] = []
        self.ranked_idx: List[int] = []
        self.generic_idx: List[int] = []
        policy_groups: Dict[tuple, List[int]] = {}
        probes: List[List[List[float]]] = []
        for e, policy in enumerate(self.policies):
            if type(policy) is SeededOmission:
                self.seeded_idx.append(e)
                continue
            key = policy.tensor_key()
            if key is not None:
                policy_groups.setdefault(key, []).append(e)
                continue
            probe = policy.rank_block(1, n)
            if probe is not None:
                self.ranked_idx.append(e)
                probes.append(probe)
            else:
                self.generic_idx.append(e)
        self.policy_tensor_groups: List[Tuple[object, np.ndarray, np.ndarray]] = [
            (
                self.policies[members[0]],
                np.asarray(members, dtype=np.intp),
                np.asarray(
                    [self.policies[e].tensor_seed() for e in members], dtype=np.uint64
                ),
            )
            for members in policy_groups.values()
        ]
        #: Round-1 rank matrices gathered during classification, reused by
        #: the first round instead of re-querying every ranked policy.
        self.rank_probe: Optional[np.ndarray] = (
            np.array(probes, dtype=np.float64) if probes else None
        )
        self.seed_mix = np.array(
            [mix64(self.policies[e].seed) for e in self.seeded_idx], dtype=np.uint64
        ).reshape(len(self.seeded_idx))
        self._to_device()

    def _to_device(self) -> None:
        """Move the round loop's tensors onto the block's array namespace.

        A no-op on the numpy float64 default (every ``xp.<op>`` below *is*
        the numpy function, so the default path stays bit-identical to the
        pre-shim engine).  float32 casts only the value state — schedules,
        masks and PRF seeds keep their exact integer dtypes, so quorum
        selection is unchanged and only value arithmetic loses precision.
        """
        xp = self.xp
        if xp.name == "numpy" and xp.dtype_name == "float64":
            return
        if self.seeded_idx or self.policy_tensor_groups or self.strategy_tensor_groups:
            xp.require_uint64("the ndbatch block's counter-based PRF tensors")
        self.values = xp.asarray(self.values, dtype=xp.float_dtype)
        if xp.name == "numpy":
            return
        # GPU backends: the mask/schedule tensors the round loop combines
        # with the value state join it on the device (host scenario data —
        # problems, strategies, group index lists — stays on the host).
        self.crash_round = xp.asarray(self.crash_round)
        self.crash_deliveries = xp.asarray(self.crash_deliveries)
        self.strategy_mask = xp.asarray(self.strategy_mask)
        self.silent_mask = xp.asarray(self.silent_mask)
        self.honest_mask = xp.asarray(self.honest_mask)
        self.holder_mask = xp.asarray(self.holder_mask)
        self.strategy_counts = xp.asarray(self.strategy_counts)
        self.seed_mix = xp.asarray(self.seed_mix)
        if self.rank_probe is not None:
            self.rank_probe = xp.asarray(self.rank_probe)


def _rounds_hint(
    protocol: str,
    inputs_block: Sequence[Sequence[float]],
    t: int,
    epsilon: float,
    round_policy: Optional[RoundPolicy],
) -> int:
    """Best-effort round count for memory planning (never raises).

    Planning happens before the block is validated, so every failure here
    degrades to a one-round estimate and lets :class:`_Block` raise the
    real, documented error.
    """
    try:
        bounds = NDBATCH_PROTOCOL_BOUNDS[protocol](len(inputs_block[0]), t)
        if round_policy is not None:
            rounds = _upfront_rounds(round_policy, bounds, epsilon)
        else:
            cell_policy = default_round_policy(bounds, inputs_block[0], epsilon)
            rounds = _upfront_rounds(cell_policy, bounds, epsilon)
        return int(rounds) if rounds else 1
    except Exception:
        return 1


def run_ndbatch_block(
    protocol: str,
    inputs_block: Sequence[Sequence[float]],
    t: int,
    epsilon: float,
    round_policy: Optional[RoundPolicy] = None,
    fault_models: Optional[Sequence[Optional[RoundFaultModel]]] = None,
    omission_policies: Optional[Sequence[Optional[OmissionPolicy]]] = None,
    seeds: Optional[Sequence[int]] = None,
    strict: bool = True,
    backend: Optional[str] = None,
    dtype: Optional[str] = None,
    budget_bytes: Optional[int] = None,
    chunk_executions: Optional[int] = None,
) -> List[ExecutionResult]:
    """Run a block of executions on the vectorised engine.

    All executions share ``(protocol, n, t, epsilon)`` and the round count
    their policies compute (heterogeneous round counts raise — group first;
    :func:`repro.sim.sweep.run_sweep` does).  Per-execution scenario data —
    inputs, fault models, omission policies — are supplied as parallel
    sequences; policies must be distinct objects per execution (they carry
    per-execution seeds/state).

    ``fault_models[e]`` defaults to no faults, ``omission_policies[e]`` to
    ``SeededOmission(seeds[e])`` (``seeds`` defaulting to all zeros), exactly
    mirroring :func:`repro.sim.batch.run_batch_protocol`, so the two engines
    realise identical scenarios for identical arguments.

    ``backend``/``dtype`` select the array namespace and float precision for
    the whole block (:func:`repro.core.backend.get_namespace`; numpy float64
    default, bit-identical to the pre-shim engine).  The block streams
    through fixed-size execution chunks sized by the memory planner
    (:func:`repro.sim.planner.plan_block`) against ``budget_bytes`` (default
    a share of available RAM), so arbitrarily large blocks run in bounded
    memory; ``chunk_executions`` overrides the planned chunk size.  Chunking
    is performance policy only — each execution's scenario is self-contained,
    so outcomes are invariant to the chunk size (guarded by
    ``tests/sim/test_planner.py``).
    """
    if protocol not in NDBATCH_PROTOCOL_BOUNDS:
        raise EngineCapabilityError(
            "ndbatch",
            f"protocol {protocol!r}",
            capable_engines({f"protocol:{protocol}"}),
        )
    count = len(inputs_block)
    if count == 0:
        return []
    if fault_models is None:
        fault_models = [None] * count
    if omission_policies is None:
        omission_policies = [None] * count
    if seeds is None:
        seeds = [0] * count
    if not (len(fault_models) == len(omission_policies) == len(seeds) == count):
        raise ValueError("inputs_block, fault_models, omission_policies and seeds "
                         "must have equal lengths")
    models = [model if model is not None else RoundFaultModel() for model in fault_models]
    policies = [
        policy if policy is not None else SeededOmission(int(seed))
        for policy, seed in zip(omission_policies, seeds)
    ]
    xp = get_namespace(backend, dtype=dtype)

    started = time.perf_counter()
    if chunk_executions is not None:
        if chunk_executions < 1:
            raise ValueError("chunk_executions must be at least 1")
        chunk = min(count, int(chunk_executions))
    else:
        n = len(inputs_block[0])
        bounds = NDBATCH_PROTOCOL_BOUNDS[protocol](n, t)
        plan = plan_block(
            count,
            n,
            bounds.sample_size,
            _rounds_hint(protocol, inputs_block, t, epsilon, round_policy),
            dtype=xp.dtype_name,
            budget_bytes=budget_bytes,
        )
        chunk = plan.chunk_executions
    if chunk >= count:
        block = _Block(
            protocol, inputs_block, t, epsilon, round_policy, models, policies,
            strict, xp=xp,
        )
        results = _advance_block(block)
    else:
        # The shared-round-count contract is a whole-block property; check it
        # up front so a heterogeneous block raises identically whether or not
        # the planner happened to chunk it.
        if round_policy is None:
            hints = {
                _rounds_hint(protocol, [inputs], t, epsilon, None)
                for inputs in inputs_block
            }
            if len(hints) > 1:
                raise ValueError(
                    f"executions in one ndbatch block must share the round "
                    f"count, got {sorted(hints)}; group cells by round count "
                    f"first (repro.sim.sweep does this automatically)"
                )
        results = []
        for start in range(0, count, chunk):
            stop = min(count, start + chunk)
            block = _Block(
                protocol,
                inputs_block[start:stop],
                t,
                epsilon,
                round_policy,
                models[start:stop],
                policies[start:stop],
                strict,
                xp=xp,
            )
            results.extend(_advance_block(block))
    wall = time.perf_counter() - started
    # Wall time is observational; charge each execution its share of the block.
    share = wall / count
    for result in results:
        result.wall_time_seconds = share
    return results


def run_ndbatch_protocol(
    protocol: str,
    inputs: Sequence[float],
    t: int,
    epsilon: float,
    round_policy: Optional[RoundPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    fault_model: Optional[RoundFaultModel] = None,
    omission_policy: Optional[OmissionPolicy] = None,
    delay_model: Optional[DelayModel] = None,
    seed: int = 0,
    strict: bool = True,
    backend: Optional[str] = None,
    dtype: Optional[str] = None,
) -> ExecutionResult:
    """Run one execution on the vectorised engine (a block of size one).

    Parameters mirror :func:`repro.sim.batch.run_batch_protocol` exactly
    (plus the array-backend selection of :func:`run_ndbatch_block`), so
    callers can switch engines by switching the function.
    """
    if fault_plan is not None and fault_model is not None:
        raise ValueError("pass either fault_plan or fault_model, not both")
    if omission_policy is not None and delay_model is not None:
        raise ValueError("pass either omission_policy or delay_model, not both")
    if fault_model is None:
        fault_model = round_fault_model(fault_plan, len(inputs))
    if omission_policy is None and delay_model is not None:
        omission_policy = DelayRankOmission(delay_model)
    return run_ndbatch_block(
        protocol,
        [list(inputs)],
        t,
        epsilon,
        round_policy=round_policy,
        fault_models=[fault_model],
        omission_policies=[omission_policy],
        seeds=[seed],
        strict=strict,
        backend=backend,
        dtype=dtype,
    )[0]


# ----------------------------------------------------------------------
# The vectorised round loop
# ----------------------------------------------------------------------


def _advance_block(block: _Block) -> List[ExecutionResult]:
    count, n, m = block.count, block.n, block.bounds.sample_size
    total_rounds = block.total_rounds
    xp = block.xp
    arange_n = xp.arange(n)

    active = xp.ones(count, dtype=bool)
    rounds_completed = xp.zeros(count, dtype=xp.int64)
    messages_sent = xp.zeros(count, dtype=xp.int64)
    bits_sent = xp.zeros(count, dtype=xp.int64)
    delivered = xp.zeros(count, dtype=xp.int64)
    rounds_entered = xp.zeros(count, dtype=xp.int64)
    holder_sends = xp.zeros((count, n), dtype=xp.int64)
    history = [xp.copy(block.values)]
    any_strategies = any(block.strategy_ids)
    clean_values = not any_strategies and not bool(block.silent_mask.any())

    # The crash model's send/update/candidate structure changes only while a
    # crash point lies ahead; past the last scheduled crash it is identical
    # every round, so it is computed once and reused.
    scheduled = xp.where(block.crash_round < _NEVER, block.crash_round, 0)
    last_crash_round = int(scheduled.max()) if count else 0
    static_structure = None

    for round_number in range(1, total_rounds + 1):
        if not active.any():
            break
        value_bits = message_bits(Message(kind="VALUE", round=round_number, value=0.0))

        if static_structure is not None:
            sends, updates, cand, cand_count, round_sends = static_structure
        else:
            # Who sends, who updates (the crash model's prefix semantics).
            before_crash = round_number < block.crash_round
            sends = xp.where(
                block.holder_mask & before_crash,
                n,
                xp.where(
                    block.holder_mask & (round_number == block.crash_round),
                    block.crash_deliveries,
                    0,
                ),
            )
            updates = block.holder_mask & before_crash
            # Candidate tensor: cand[e, recipient, sender].
            cand = block.strategy_mask[:, None, :] | (
                block.holder_mask[:, None, :]
                & (arange_n[None, :, None] < sends[:, None, :])
            )
            cand &= ~block.silent_mask[:, None, :]
            cand_count = cand.sum(axis=2)
            round_sends = sends.sum(axis=1) + n * block.strategy_counts
            if round_number > last_crash_round:
                static_structure = (sends, updates, cand, cand_count, round_sends)

        # Message accounting happens at round entry, exactly like the batch
        # engine (a round that fails liveness mid-way keeps its sends).
        messages_sent += xp.where(active, round_sends, 0)
        bits_sent += xp.where(active, round_sends * value_bits, 0)
        holder_sends += sends * active[:, None]
        rounds_entered += active

        # Full-information adversary: strategies observe every holder value
        # at round entry.
        injected = None
        if any_strategies:
            injected = _injected_values(block, round_number)

        if block.synchronous:
            sample = _sync_samples(block, cand, injected)
            sample_width = n
            failed_round = xp.zeros(count, dtype=bool)
            round_delivered = xp.where(active, updates.sum(axis=1) * n, 0)
        else:
            sample, failed_round, round_delivered = _async_samples(
                block, cand, cand_count, injected, updates, active, round_number, m
            )
            sample_width = m
        delivered += round_delivered

        apply_mask = updates & active[:, None] & ~failed_round[:, None]
        if clean_values and not failed_round.any():
            # Crash-only blocks gather exclusively finite holder values, so
            # the placeholder fill and the kernel's finiteness scan are
            # provably redundant.
            new_values = approximation_step_block(
                sample, block.bounds, validate=False, xp=xp
            )
        else:
            safe_sample = xp.where(
                apply_mask[:, :, None],
                sample,
                xp.zeros((1, 1, sample_width), dtype=xp.float_dtype),
            )
            new_values = approximation_step_block(safe_sample, block.bounds, xp=xp)
        block.values = xp.where(apply_mask, new_values, block.values)
        history.append(xp.copy(block.values))

        completed_now = active & ~failed_round
        rounds_completed = np.where(completed_now, round_number, rounds_completed)
        active = completed_now

    return _assemble_results(
        block,
        history,
        active,
        rounds_completed,
        messages_sent,
        bits_sent,
        delivered,
        rounds_entered,
        holder_sends,
    )


def _injected_values(block: _Block, round_number: int) -> np.ndarray:
    """Eagerly evaluated strategy reports: ``injected[e, sender, recipient]``.

    Tensor-programmed strategies (:meth:`~repro.net.adversary.
    ByzantineValueStrategy.value_tensor`) answer whole ``(pid, program)``
    groups with one Python call per round — zero per-execution strategy
    calls; stateless strategies without a tensor form keep the per-execution
    ``value_block``/``value`` path, issued in the batch engine's order.
    Non-finite reports are stored as NaN, which the sampling paths treat as
    omissions (mirroring the message boundary of the protocol skeletons).
    Only stateless strategies reach this point, so eager evaluation for every
    recipient is indistinguishable from the batch engine's lazy evaluation.
    """
    count, n = block.count, block.n
    xp = block.xp
    injected = np.full((count, n, n), np.nan, dtype=np.float64)
    for pid, representative, rows, seeds in block.strategy_tensor_groups:
        # Full-information adversary: each execution observes its holder
        # values (NaN at non-holder slots); one bulk call covers every
        # member execution of the group.
        observed = xp.where(block.holder_mask[rows], block.values[rows], xp.nan)
        reports = representative.value_tensor(round_number, n, observed, seeds)
        if reports is None:
            raise ValueError(
                f"strategy {representative.describe()} declares tensor program "
                f"{representative.tensor_key()!r} but value_tensor returned None"
            )
        injected[rows, pid, :] = np.asarray(xp.to_numpy(reports), dtype=np.float64)
    if block.strategy_scalar:
        observed_lists: Dict[int, List[float]] = {}
        for e, sender, strategy in block.strategy_scalar:
            observed = observed_lists.get(e)
            if observed is None:
                row = np.asarray(xp.to_numpy(block.values[e]), dtype=np.float64)
                mask = np.asarray(xp.to_numpy(block.holder_mask[e]))
                observed = np.sort(row[mask]).tolist()
                observed_lists[e] = observed
            reports = strategy.value_block(round_number, n, observed)
            if reports is not None:
                injected[e, sender, :] = np.asarray(reports, dtype=np.float64)
                continue
            for recipient in range(n):
                value = strategy.value(round_number, recipient, observed)
                if isinstance(value, (int, float)):
                    injected[e, sender, recipient] = float(value)  # inf -> isfinite no
    # Normalise ±inf to NaN so one mask covers every non-finite report.
    np.copyto(injected, np.nan, where=~np.isfinite(injected))
    return xp.asarray(injected, dtype=xp.float_dtype)


def _sync_samples(
    block: _Block, cand: np.ndarray, injected: Optional[np.ndarray]
) -> np.ndarray:
    """Size-``n`` synchronous samples with own-value substitution."""
    xp = block.xp
    own = block.values[:, :, None]  # (E, recipient, 1)
    holder_values = block.values[:, None, :]  # (E, 1, sender)
    sample = xp.where(cand & block.holder_mask[:, None, :], holder_values, own)
    if injected is not None:
        reports = xp.swapaxes(injected, 1, 2)  # (E, recipient, sender)
        use = cand & block.strategy_mask[:, None, :] & xp.isfinite(reports)
        sample = xp.where(use, reports, sample)
    return sample


def _async_samples(
    block: _Block,
    cand: np.ndarray,
    cand_count: np.ndarray,
    injected: Optional[np.ndarray],
    updates: np.ndarray,
    active: np.ndarray,
    round_number: int,
    m: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Quorum samples ``(E, n, m)``, liveness failures, and delivery counts.

    Reproduces the batch engine's per-recipient behaviour: the omission
    policy picks ``m`` candidates, non-finite Byzantine reports degrade to
    omissions and the quorum refills from the remaining candidates in
    ascending sender order, and a recipient that cannot fill its quorum fails
    the execution at that recipient (earlier recipients' deliveries stand).
    """
    count, n = block.count, block.n
    xp = block.xp
    chosen = _choose_quorums(block, cand, cand_count, updates, active, round_number, m)

    e_idx = xp.arange(count)[:, None, None]
    sample = block.values[e_idx, chosen]
    if injected is not None:
        q_idx = xp.arange(n)[None, :, None]
        strategy_chosen = block.strategy_mask[e_idx, chosen]
        if strategy_chosen.any():
            reports = injected[e_idx, chosen, q_idx]
            sample = xp.where(strategy_chosen, reports, sample)

    # Liveness / refill bookkeeping.  In-model scenarios never enter either
    # branch: the candidate set always has >= m members and only Byzantine
    # strategies can inject non-finite values (so crash-only blocks skip the
    # finiteness scan entirely).
    relevant = updates & active[:, None]
    starving = relevant & (cand_count < m)
    if injected is not None:
        short = relevant & (xp.isfinite(sample).sum(axis=2) < m) & ~starving
    else:
        short = xp.zeros_like(starving)
    failed_at = xp.full(count, n, dtype=xp.int64)
    if starving.any() or short.any():
        failed_at = _refill_or_fail(
            block, cand, chosen, sample, starving, short, round_number, m
        )
    failed_round = failed_at < n

    quorums_filled = xp.where(
        failed_round[:, None],
        (xp.arange(n)[None, :] < failed_at[:, None]) & relevant,
        relevant,
    ).sum(axis=1)
    round_delivered = quorums_filled * m
    return sample, failed_round, round_delivered


def _choose_quorums(
    block: _Block,
    cand: np.ndarray,
    cand_count: np.ndarray,
    updates: np.ndarray,
    active: np.ndarray,
    round_number: int,
    m: int,
) -> np.ndarray:
    """Quorum index tensor ``chosen[e, recipient, :m]`` for one round."""
    count, n = block.count, block.n
    xp = block.xp
    chosen = xp.zeros((count, n, m), dtype=xp.int64)

    if block.seeded_idx:
        idx = block.seeded_idx
        keys = _seeded_keys(block.seed_mix, round_number, n)
        xp.copyto(keys, _UINT64_MAX, where=~cand[idx])
        # Selection by value sort: the sender id lives in each key's low
        # bits, so sorting the keys and masking those bits out yields the
        # chosen senders directly — cheaper than argsort's indirection and
        # exactly the scalar engine's (PRF value, sender) order.
        smallest = xp.sort(keys, axis=2)[:, :, :m]
        picked = (smallest & xp.uint64(SENDER_MASK)).astype(xp.int64)
        # Starving rows (fewer candidates than m) pick up the sentinel's low
        # bits; clamp so the gather stays in bounds — those rows fail the
        # execution before their samples are ever used.
        chosen[idx] = xp.minimum(picked, n - 1)

    for representative, members, seeds in block.policy_tensor_groups:
        ranks = representative.rank_tensor(round_number, n, seeds)
        if ranks is None:
            # Same contract as the strategy path: a non-None tensor_key is a
            # promise to answer (silently proceeding would turn the default
            # None into NaN ranks and pick wrong quorums).
            raise ValueError(
                f"omission policy {representative.describe()} declares tensor "
                f"program {representative.tensor_key()!r} but rank_tensor "
                f"returned None"
            )
        ranks = xp.asarray(ranks)
        sub_cand = cand[members]
        if getattr(ranks.dtype, "kind", "f") in "iu":
            # PRF rank keys (tie-free by construction): mask non-candidates
            # with the maximal key, then a stable argsort is selection.
            masked = xp.where(sub_cand, ranks, xp.iinfo(ranks.dtype).max)
        else:
            # NaN sorts after every number including +inf, so a legitimately
            # infinite rank still outranks a non-candidate; stable argsort
            # reproduces the scalar path's by-sender tie-breaking.
            masked = xp.where(sub_cand, ranks.astype(np.float64, copy=False), xp.nan)
        order = xp.argsort(masked, axis=2, kind="stable")
        chosen[members] = order[:, :, :m]

    if block.ranked_idx:
        idx = block.ranked_idx
        if round_number == 1 and block.rank_probe is not None:
            ranks = block.rank_probe
            block.rank_probe = None
        else:
            ranks = xp.asarray(
                np.array(
                    [block.policies[e].rank_block(round_number, n) for e in idx],
                    dtype=np.float64,
                )
            )
        # NaN (not inf) masks the non-candidates: numpy sorts NaN after every
        # number including +inf, so a legitimately infinite rank (e.g. an
        # infinite delay) still outranks a non-candidate — matching the
        # scalar path, which only ever sorts actual candidates.
        masked = xp.where(cand[idx], ranks, xp.nan)
        # Real-valued ranks (e.g. delays) do tie; the scalar path breaks ties
        # by sender id, which the stable sort reproduces exactly.
        order = xp.argsort(masked, axis=2, kind="stable")
        chosen[idx] = order[:, :, :m]

    for e in block.generic_idx:
        if not active[e]:
            continue
        policy = block.policies[e]
        trusted = type(policy) is DelayRankOmission
        for recipient in range(n):
            if not updates[e, recipient] or cand_count[e, recipient] < m:
                continue
            candidates = np.nonzero(np.asarray(xp.to_numpy(cand[e, recipient])))[0].tolist()
            picked = list(policy.quorum(round_number, recipient, candidates, m))
            if not trusted:
                picked_set = set(picked)
                if len(picked) != m or len(picked_set) != m:
                    raise ValueError(
                        f"omission policy {policy.describe()} returned {len(picked)} "
                        f"senders, expected {m} distinct"
                    )
                if not picked_set <= set(candidates):
                    raise ValueError(
                        f"omission policy {policy.describe()} chose senders outside "
                        "the candidate set"
                    )
            chosen[e, recipient, :] = picked
    return chosen


def _refill_or_fail(
    block: _Block,
    cand: np.ndarray,
    chosen: np.ndarray,
    sample: np.ndarray,
    starving: np.ndarray,
    short: np.ndarray,
    round_number: int,
    m: int,
) -> np.ndarray:
    """Handle quorum starvation and non-finite-report refills (rare paths).

    Mutates ``sample`` in place for refilled quorums and returns, per
    execution, the first recipient at which the quorum could not be filled
    (``n`` when every quorum filled).  Matches the batch engine: a dropped
    non-finite report refills from the not-chosen candidates in ascending
    sender order; starvation fails the execution at that recipient.
    """
    count, n = block.count, block.n
    failed_at = np.full(count, n, dtype=np.int64)
    for e in range(count):
        for recipient in range(n):
            if starving[e, recipient]:
                failed_at[e] = recipient
                break
            if not short[e, recipient]:
                continue
            quorum = chosen[e, recipient]
            collected = [
                float(sample[e, recipient, i])
                for i in range(m)
                if np.isfinite(sample[e, recipient, i])
            ]
            chosen_set = set(int(s) for s in quorum)
            refill_ok = True
            for sender in np.nonzero(cand[e, recipient])[0]:
                if len(collected) >= m:
                    break
                sender = int(sender)
                if sender in chosen_set:
                    continue
                value = _late_sender_value(block, e, sender, recipient, round_number)
                if value is not None:
                    collected.append(value)
            if len(collected) < m:
                failed_at[e] = recipient
                refill_ok = False
            if not refill_ok:
                break
            sample[e, recipient, :] = collected
    return failed_at


def _late_sender_value(
    block: _Block, e: int, sender: int, recipient: int, round_number: int
) -> Optional[float]:
    """Value a late (not-chosen) candidate contributes during a refill."""
    if block.strategy_mask[e, sender]:
        strategy = block.fault_models[e].strategies[sender]
        observed = np.sort(block.values[e][block.holder_mask[e]]).tolist()
        value = strategy.value(round_number, recipient, observed)
        if not isinstance(value, (int, float)) or not np.isfinite(value):
            return None
        return float(value)
    return float(block.values[e, sender])


# ----------------------------------------------------------------------
# Result assembly
# ----------------------------------------------------------------------


def _assemble_results(
    block: _Block,
    history: List[np.ndarray],
    active: np.ndarray,
    rounds_completed: np.ndarray,
    messages_sent: np.ndarray,
    bits_sent: np.ndarray,
    delivered: np.ndarray,
    rounds_entered: np.ndarray,
    holder_sends: np.ndarray,
) -> List[ExecutionResult]:
    count, n = block.count, block.n
    xp = block.xp
    if not (xp.name == "numpy" and xp.dtype_name == "float64"):
        # Result assembly is host-side: per-execution Python objects are
        # built from host float64 data regardless of where (and at what
        # precision) the block ran.
        history = [np.asarray(xp.to_numpy(row), dtype=np.float64) for row in history]
        block.values = np.asarray(xp.to_numpy(block.values), dtype=np.float64)
        block.honest_mask = np.asarray(xp.to_numpy(block.honest_mask))
        active = np.asarray(xp.to_numpy(active))
        rounds_completed = np.asarray(xp.to_numpy(rounds_completed))
        messages_sent = np.asarray(xp.to_numpy(messages_sent))
        bits_sent = np.asarray(xp.to_numpy(bits_sent))
        delivered = np.asarray(xp.to_numpy(delivered))
        rounds_entered = np.asarray(xp.to_numpy(rounds_entered))
        holder_sends = np.asarray(xp.to_numpy(holder_sends))
    stacked = np.stack(history)  # (rounds + 1, E, n)

    # Spread trajectories of every execution at once: diameter of the honest
    # values after each round (faulty columns masked out of max/min).
    honest3 = block.honest_mask[None, :, :]
    traj_all = (
        np.where(honest3, stacked, -np.inf).max(axis=2)
        - np.where(honest3, stacked, np.inf).min(axis=2)
    ).T  # (E, rounds + 1)

    # Vectorised fast path of repro.core.problem.validate_outputs for the
    # common all-correct case; executions failing any check fall back to the
    # shared checker so reports (violation strings included) stay identical.
    eps_ok_bound = block.epsilon * (1.0 + 1e-9)
    output_spread = traj_all[np.arange(count), rounds_completed]
    agreement_ok = output_spread <= eps_ok_bound
    byz_mask = np.zeros((count, n), dtype=bool)
    for e, problem in enumerate(block.problems):
        for pid in problem.byzantine:
            byz_mask[e, pid] = True
    validity_ref = np.where(byz_mask, np.nan, block.inputs_matrix)
    lo = np.nanmin(validity_ref, axis=1)
    hi = np.nanmax(validity_ref, axis=1)
    slack = 1e-9 * np.maximum(1.0, np.maximum(np.abs(lo), np.abs(hi)))
    out_hi = np.where(block.honest_mask, block.values, -np.inf).max(axis=1)
    out_lo = np.where(block.honest_mask, block.values, np.inf).min(axis=1)
    validity_ok = (out_lo >= lo - slack) & (out_hi <= hi + slack)
    fast_ok = active & agreement_ok & validity_ok

    # Bulk conversions to Python scalars up front: element-wise numpy reads
    # inside the per-execution loop would dominate large blocks.
    hist_t = np.ascontiguousarray(stacked.transpose(1, 2, 0))  # (E, n, rounds + 1)
    values_rows = block.values.tolist()
    traj_rows = traj_all.tolist()
    spread_list = output_spread.tolist()
    completed_list = rounds_completed.tolist()
    messages_list = messages_sent.tolist()
    bits_list = bits_sent.tolist()
    delivered_list = delivered.tolist()
    entered_list = rounds_entered.tolist()
    holder_sends_rows = holder_sends.tolist()

    results: List[ExecutionResult] = []
    for e in range(count):
        problem = block.problems[e]
        decided = bool(active[e])
        completed = completed_list[e]
        honest = problem.honest
        values_row = values_rows[e]

        outputs: Dict[int, Optional[float]] = {
            pid: (values_row[pid] if decided else None) for pid in honest
        }
        if fast_ok[e]:
            report = ValidationReport(
                all_decided=True,
                epsilon_agreement=True,
                validity=True,
                output_spread=spread_list[e],
                outputs=dict(outputs),
            )
        else:
            report = validate_outputs(problem, outputs)

        rows = hist_t[e].tolist()
        length = 1 + completed  # honest processes never crash, so never truncate
        value_histories: Dict[int, List[float]] = {
            pid: rows[pid][:length] for pid in honest
        }
        trajectory = traj_rows[e][:length]

        stats = NetworkStats()
        stats.messages_sent = messages_list[e]
        stats.bits_sent = bits_list[e]
        stats.messages_delivered = delivered_list[e]
        if stats.messages_sent:
            stats.messages_by_kind["VALUE"] = stats.messages_sent
        sends_row = holder_sends_rows[e]
        strategy_ids = block.strategy_ids[e]
        for pid in range(n):
            sent = sends_row[pid]
            if pid in strategy_ids:
                sent = n * entered_list[e]
            if sent:
                stats.sends_by_process[pid] = sent

        results.append(
            ExecutionResult(
                protocol=block.protocol,
                runtime="ndbatch",
                problem=problem,
                report=report,
                outputs=outputs,
                stats=stats,
                rounds_used=completed,
                trajectory=trajectory,
                value_histories=value_histories,
                events_executed=0,
                wall_time_seconds=0.0,
            )
        )
    return results


# ----------------------------------------------------------------------
# Vector (multidimensional) blocks: (executions, n, d) on the fast path
# ----------------------------------------------------------------------
#
# Coordinate-wise vector agreement (repro.sim.vector) runs d independent
# scalar executions over the SAME fault plan, delay model and seeds.  Every
# structural decision of such an execution — who crashes when, which quorums
# each recipient picks, which processes are Byzantine — is value-independent
# (crash schedules are data; quorum selection ranks PRF keys or delay ranks,
# never values), so all d coordinates share one round structure and the
# whole composition collapses into ONE block whose value state is an
# (executions, n, d) tensor:
#
# * quorum selection runs once per round (shared across coordinates) —
#   this, not the kernel, is where the d× win over composition comes from;
# * Byzantine strategies are evaluated once per coordinate on that
#   coordinate's observed values (same PRF seeds as the scalar engine), so
#   a Byzantine sender still "may differ per coordinate" exactly as the
#   composition allows: value-independent strategies (fixed, equivocate,
#   random) report identically in every coordinate, observed-dependent ones
#   (anti-convergence) differ because the observations differ;
# * the approximation kernel reduces along the multiset axis of an
#   (executions, n, m, d) gather (``axis=-2``), which is bit-identical to
#   running it per coordinate.
#
# Out-of-model corner cases where the shared structure would break —
# non-finite Byzantine reports (per-coordinate quorum refill) and stateful
# per-recipient omission policies — raise EngineCapabilityError pointing at
# the coordinate-wise composition, which handles both.


def run_vector_block(
    protocol: str,
    vector_inputs_block: Sequence[Sequence[Sequence[float]]],
    t: int,
    epsilon: float,
    round_policy: Optional[RoundPolicy] = None,
    fault_models: Optional[Sequence[Optional[RoundFaultModel]]] = None,
    omission_policies: Optional[Sequence[Optional[OmissionPolicy]]] = None,
    seeds: Optional[Sequence[int]] = None,
    strict: bool = True,
    backend: Optional[str] = None,
    dtype: Optional[str] = None,
    budget_bytes: Optional[int] = None,
    chunk_executions: Optional[int] = None,
) -> List[VectorExecutionResult]:
    """Run a block of vector-agreement executions on the vectorised engine.

    ``vector_inputs_block[e]`` is one execution's inputs: ``n`` vectors of a
    shared dimension ``d`` (ragged inputs fail loudly in
    :func:`repro.core.multidim.normalize_vector_inputs`).  All executions
    share ``(protocol, n, t, epsilon, d)`` and the round count; scenario
    arguments mirror :func:`run_ndbatch_block` exactly.

    ``d == 1`` delegates to the scalar block engine and lifts its results,
    so one-dimensional vector blocks are bit-identical to scalar ndbatch by
    construction.  ``d > 1`` runs the shared-structure tensor path described
    above; with no ``round_policy`` the shared count covers the ℓ∞ input
    spread (:func:`repro.core.termination.default_vector_round_policy`) —
    pass the same policy to :func:`repro.sim.vector.run_vector_protocol`
    when comparing engines.  Memory planning multiplies the value-array
    terms by ``d`` (:func:`repro.sim.planner.bytes_per_execution`).
    """
    if protocol not in NDBATCH_PROTOCOL_BOUNDS:
        raise EngineCapabilityError(
            "ndbatch",
            f"protocol {protocol!r}",
            capable_engines({f"protocol:{protocol}"}),
        )
    count = len(vector_inputs_block)
    if count == 0:
        return []
    normalized = [normalize_vector_inputs(inputs) for inputs in vector_inputs_block]
    n = len(normalized[0])
    dimension = len(normalized[0][0])
    for vectors in normalized[1:]:
        if len(vectors) != n:
            raise ValueError("all executions in a block must share n")
        if len(vectors[0]) != dimension:
            raise ValueError(
                "all executions in a vector block must share the dimension d"
            )
    if fault_models is None:
        fault_models = [None] * count
    if omission_policies is None:
        omission_policies = [None] * count
    if seeds is None:
        seeds = [0] * count
    if not (len(fault_models) == len(omission_policies) == len(seeds) == count):
        raise ValueError("vector_inputs_block, fault_models, omission_policies and "
                         "seeds must have equal lengths")

    if dimension == 1:
        scalar_block = [[vector[0] for vector in vectors] for vectors in normalized]
        scalar_results = run_ndbatch_block(
            protocol,
            scalar_block,
            t,
            epsilon,
            round_policy=round_policy,
            fault_models=fault_models,
            omission_policies=omission_policies,
            seeds=seeds,
            strict=strict,
            backend=backend,
            dtype=dtype,
            budget_bytes=budget_bytes,
            chunk_executions=chunk_executions,
        )
        return [_lift_scalar_result(result) for result in scalar_results]

    models = [model if model is not None else RoundFaultModel() for model in fault_models]
    policies = [
        policy if policy is not None else SeededOmission(int(seed))
        for policy, seed in zip(omission_policies, seeds)
    ]
    xp = get_namespace(backend, dtype=dtype)
    bounds = NDBATCH_PROTOCOL_BOUNDS[protocol](n, t)
    if round_policy is not None:
        shared_rounds = _upfront_rounds(round_policy, bounds, epsilon)
        if shared_rounds is None:
            raise EngineCapabilityError(
                "ndbatch",
                f"adaptive round policies ({round_policy.describe()}: the "
                f"engine requires a round count known upfront)",
                ("batch", "event"),
            )
    else:
        hints = {
            _upfront_rounds(
                default_vector_round_policy(bounds, vectors, epsilon), bounds, epsilon
            )
            for vectors in normalized
        }
        if len(hints) > 1:
            raise ValueError(
                f"executions in one ndbatch block must share the round count, "
                f"got {sorted(hints)}; group cells by round count first "
                f"(repro.sim.sweep does this automatically)"
            )
        shared_rounds = hints.pop()
    shared_policy = FixedRounds(int(shared_rounds))

    started = time.perf_counter()
    if chunk_executions is not None:
        if chunk_executions < 1:
            raise ValueError("chunk_executions must be at least 1")
        chunk = min(count, int(chunk_executions))
    else:
        plan = plan_block(
            count,
            n,
            bounds.sample_size,
            max(1, int(shared_rounds)),
            dtype=xp.dtype_name,
            budget_bytes=budget_bytes,
            dimension=dimension,
        )
        chunk = plan.chunk_executions
    results: List[VectorExecutionResult] = []
    for start in range(0, count, chunk):
        stop = min(count, start + chunk)
        results.extend(
            _run_vector_chunk(
                protocol,
                normalized[start:stop],
                t,
                epsilon,
                shared_policy,
                models[start:stop],
                policies[start:stop],
                strict,
                xp,
                dimension,
            )
        )
    wall = time.perf_counter() - started
    share = wall / count
    for result in results:
        result.wall_time_seconds = share
    return results


def _lift_scalar_result(result: ExecutionResult) -> VectorExecutionResult:
    """Lift a scalar :class:`ExecutionResult` to a 1-dimensional vector result.

    The scalar execution IS the d=1 vector execution (scalar ε-agreement is
    ℓ∞ ε-agreement in R¹, interval validity is box validity), so the report
    translates field-by-field and the scalar result rides along as the one
    coordinate result — d=1 vector blocks stay bit-identical to scalar
    ndbatch by construction.
    """
    outputs = {
        pid: ((value,) if value is not None else None)
        for pid, value in result.outputs.items()
    }
    report = VectorValidationReport(
        all_decided=result.report.all_decided,
        linf_agreement=result.report.epsilon_agreement,
        box_validity=result.report.validity,
        max_linf_distance=result.report.output_spread,
        outputs={pid: vector for pid, vector in outputs.items() if vector is not None},
        violations=list(result.report.violations),
    )
    return VectorExecutionResult(
        protocol=result.protocol,
        dimension=1,
        report=report,
        outputs=outputs,
        coordinate_results=[result],
        runtime="ndbatch",
        stats=result.stats,
        trajectory=tuple(result.trajectory),
        rounds=result.rounds_used,
        wall_time_seconds=result.wall_time_seconds,
    )


def _run_vector_chunk(
    protocol: str,
    vectors_chunk: Sequence[Tuple[Tuple[float, ...], ...]],
    t: int,
    epsilon: float,
    round_policy: RoundPolicy,
    fault_models: Sequence[RoundFaultModel],
    omission_policies: Sequence[OmissionPolicy],
    strict: bool,
    xp: ArrayNamespace,
    dimension: int,
) -> List[VectorExecutionResult]:
    """Advance one chunk of ``(executions, n, d)`` vector executions."""
    coord0 = [[vector[0] for vector in vectors] for vectors in vectors_chunk]
    block = _Block(
        protocol, coord0, t, epsilon, round_policy,
        fault_models, omission_policies, strict, xp=xp,
    )
    if block.generic_idx:
        sample_policy = block.policies[block.generic_idx[0]]
        raise EngineCapabilityError(
            "ndbatch",
            f"per-recipient omission policies in vector blocks "
            f"({sample_policy.describe()} answers neither a tensor program nor "
            f"rank_block, so its quorum draws cannot be shared across "
            f"coordinates; compose coordinate-wise via "
            f"repro.sim.vector.run_vector_protocol)",
            ("event",),
        )
    block.dimension = dimension
    # Replace the structural block's scalar value state with the full
    # (E, n, d) tensor: corrupted inputs broadcast to every coordinate
    # (scalar forgeries, as in round_fault_model), non-holders start at NaN.
    inputs_tensor = np.asarray(vectors_chunk, dtype=np.float64)
    block.inputs_tensor = inputs_tensor
    starting = inputs_tensor.copy()
    for e, model in enumerate(block.fault_models):
        for pid, forged in model.corrupted_inputs.items():
            if pid < block.n:
                starting[e, pid, :] = float(forged)
    start_dev = xp.asarray(starting, dtype=xp.float_dtype)
    block.values = xp.where(block.holder_mask[:, :, None], start_dev, xp.nan)
    return _advance_vector_block(block)


def _advance_vector_block(block: _Block) -> List[VectorExecutionResult]:
    """The scalar round loop over an ``(E, n, d)`` value tensor.

    Mirrors :func:`_advance_block` statement-for-statement; only the value
    state, samples and injected reports carry the trailing ``d`` axis — the
    send/update/candidate structure, quorum selection and cost accounting
    are shared across coordinates (per-coordinate costs are the shared
    counts times ``d``, applied at assembly).
    """
    count, n, m = block.count, block.n, block.bounds.sample_size
    total_rounds = block.total_rounds
    xp = block.xp
    arange_n = xp.arange(n)

    active = xp.ones(count, dtype=bool)
    rounds_completed = xp.zeros(count, dtype=xp.int64)
    messages_sent = xp.zeros(count, dtype=xp.int64)
    bits_sent = xp.zeros(count, dtype=xp.int64)
    delivered = xp.zeros(count, dtype=xp.int64)
    rounds_entered = xp.zeros(count, dtype=xp.int64)
    holder_sends = xp.zeros((count, n), dtype=xp.int64)
    history = [xp.copy(block.values)]
    any_strategies = any(block.strategy_ids)
    clean_values = not any_strategies and not bool(block.silent_mask.any())

    scheduled = xp.where(block.crash_round < _NEVER, block.crash_round, 0)
    last_crash_round = int(scheduled.max()) if count else 0
    static_structure = None

    for round_number in range(1, total_rounds + 1):
        if not active.any():
            break
        value_bits = message_bits(Message(kind="VALUE", round=round_number, value=0.0))

        if static_structure is not None:
            sends, updates, cand, cand_count, round_sends = static_structure
        else:
            before_crash = round_number < block.crash_round
            sends = xp.where(
                block.holder_mask & before_crash,
                n,
                xp.where(
                    block.holder_mask & (round_number == block.crash_round),
                    block.crash_deliveries,
                    0,
                ),
            )
            updates = block.holder_mask & before_crash
            cand = block.strategy_mask[:, None, :] | (
                block.holder_mask[:, None, :]
                & (arange_n[None, :, None] < sends[:, None, :])
            )
            cand &= ~block.silent_mask[:, None, :]
            cand_count = cand.sum(axis=2)
            round_sends = sends.sum(axis=1) + n * block.strategy_counts
            if round_number > last_crash_round:
                static_structure = (sends, updates, cand, cand_count, round_sends)

        messages_sent += xp.where(active, round_sends, 0)
        bits_sent += xp.where(active, round_sends * value_bits, 0)
        holder_sends += sends * active[:, None]
        rounds_entered += active

        injected = None
        if any_strategies:
            injected = _vector_injected_values(block, round_number)

        if block.synchronous:
            sample = _vector_sync_samples(block, cand, injected)
            failed_round = xp.zeros(count, dtype=bool)
            round_delivered = xp.where(active, updates.sum(axis=1) * n, 0)
        else:
            sample, failed_round, round_delivered = _vector_async_samples(
                block, cand, cand_count, injected, updates, active, round_number, m
            )
        delivered += round_delivered

        apply_mask = updates & active[:, None] & ~failed_round[:, None]
        if clean_values and not failed_round.any():
            new_values = approximation_step_block(
                sample, block.bounds, validate=False, xp=xp, axis=-2
            )
        else:
            safe_sample = xp.where(
                apply_mask[:, :, None, None],
                sample,
                xp.zeros((1, 1, 1, 1), dtype=xp.float_dtype),
            )
            new_values = approximation_step_block(
                safe_sample, block.bounds, xp=xp, axis=-2
            )
        block.values = xp.where(apply_mask[:, :, None], new_values, block.values)
        history.append(xp.copy(block.values))

        completed_now = active & ~failed_round
        rounds_completed = xp.where(completed_now, round_number, rounds_completed)
        active = completed_now

    return _assemble_vector_results(
        block,
        history,
        active,
        rounds_completed,
        messages_sent,
        bits_sent,
        delivered,
        rounds_entered,
        holder_sends,
    )


def _vector_injected_values(block: _Block, round_number: int) -> np.ndarray:
    """Strategy reports per coordinate: ``injected[e, sender, recipient, c]``.

    One :meth:`~repro.net.adversary.ByzantineValueStrategy.value_tensor`
    call per ``(sender, program)`` group *per coordinate*, with the same PRF
    seed vector in every coordinate — exactly what the coordinate-wise
    composition evaluates, since it reuses one strategy instance across its
    ``d`` scalar executions.  Observed values are the coordinate's own
    holder values, so observed-dependent strategies differ per coordinate
    and value-independent ones repeat — "a Byzantine sender may differ per
    coordinate" is preserved.
    """
    count, n, d = block.count, block.n, block.dimension
    xp = block.xp
    injected = np.full((count, n, n, d), np.nan, dtype=np.float64)
    for pid, representative, rows, seeds in block.strategy_tensor_groups:
        for c in range(d):
            observed = xp.where(
                block.holder_mask[rows], block.values[rows][:, :, c], xp.nan
            )
            reports = representative.value_tensor(round_number, n, observed, seeds)
            if reports is None:
                raise ValueError(
                    f"strategy {representative.describe()} declares tensor program "
                    f"{representative.tensor_key()!r} but value_tensor returned None"
                )
            injected[rows, pid, :, c] = np.asarray(
                xp.to_numpy(reports), dtype=np.float64
            )
    for e, sender, strategy in block.strategy_scalar:
        for c in range(d):
            row = np.asarray(xp.to_numpy(block.values[e][:, c]), dtype=np.float64)
            mask = np.asarray(xp.to_numpy(block.holder_mask[e]))
            observed = np.sort(row[mask]).tolist()
            reports = strategy.value_block(round_number, n, observed)
            if reports is not None:
                injected[e, sender, :, c] = np.asarray(reports, dtype=np.float64)
                continue
            for recipient in range(n):
                value = strategy.value(round_number, recipient, observed)
                if isinstance(value, (int, float)):
                    injected[e, sender, recipient, c] = float(value)
    np.copyto(injected, np.nan, where=~np.isfinite(injected))
    return xp.asarray(injected, dtype=xp.float_dtype)


def _vector_sync_samples(
    block: _Block, cand: np.ndarray, injected: Optional[np.ndarray]
) -> np.ndarray:
    """Size-``n`` synchronous samples ``(E, n, n, d)`` with own-value substitution.

    A non-finite report degrades to an omission per coordinate (the
    recipient keeps its own value in that coordinate), matching the
    composition, where each coordinate's execution drops the report
    independently.
    """
    xp = block.xp
    own = block.values[:, :, None, :]  # (E, recipient, 1, d)
    holder_values = block.values[:, None, :, :]  # (E, 1, sender, d)
    use_holder = (cand & block.holder_mask[:, None, :])[:, :, :, None]
    sample = xp.where(use_holder, holder_values, own)
    if injected is not None:
        reports = xp.swapaxes(injected, 1, 2)  # (E, recipient, sender, d)
        use = (cand & block.strategy_mask[:, None, :])[:, :, :, None] & xp.isfinite(
            reports
        )
        sample = xp.where(use, reports, sample)
    return sample


def _vector_async_samples(
    block: _Block,
    cand: np.ndarray,
    cand_count: np.ndarray,
    injected: Optional[np.ndarray],
    updates: np.ndarray,
    active: np.ndarray,
    round_number: int,
    m: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Quorum samples ``(E, n, m, d)``, liveness failures, delivery counts.

    Quorum selection is value-independent, so ONE :func:`_choose_quorums`
    call serves every coordinate.  Starvation (fewer candidates than ``m``)
    is likewise value-independent and fails the execution at the first
    starving recipient, identically in all coordinates.  What the shared
    structure cannot represent is a *non-finite* Byzantine report: the
    scalar engine refills that quorum slot per coordinate, which would let
    quorums diverge between coordinates — those scenarios raise and route
    to the coordinate-wise composition.
    """
    count, n = block.count, block.n
    xp = block.xp
    chosen = _choose_quorums(block, cand, cand_count, updates, active, round_number, m)

    e_idx = xp.arange(count)[:, None, None]
    sample = block.values[e_idx, chosen]  # (E, n, m, d)
    if injected is not None:
        q_idx = xp.arange(n)[None, :, None]
        strategy_chosen = block.strategy_mask[e_idx, chosen]
        if strategy_chosen.any():
            reports = injected[e_idx, chosen, q_idx]  # (E, n, m, d)
            sample = xp.where(strategy_chosen[:, :, :, None], reports, sample)

    relevant = updates & active[:, None]
    starving = relevant & (cand_count < m)
    if injected is not None:
        finite_rows = xp.isfinite(sample).all(axis=-1).all(axis=-1)  # (E, n)
        short = relevant & ~finite_rows & ~starving
        if bool(short.any()):
            raise EngineCapabilityError(
                "ndbatch",
                "non-finite Byzantine reports in vector blocks (a dropped "
                "report refills its quorum slot per coordinate, which the "
                "shared-quorum tensor path cannot represent; compose "
                "coordinate-wise via repro.sim.vector.run_vector_protocol)",
                ("event",),
            )
    failed_at = xp.full(count, n, dtype=xp.int64)
    if bool(starving.any()):
        position = xp.where(starving, xp.arange(n)[None, :], n)
        failed_at = position.min(axis=1)
    failed_round = failed_at < n

    quorums_filled = xp.where(
        failed_round[:, None],
        (xp.arange(n)[None, :] < failed_at[:, None]) & relevant,
        relevant,
    ).sum(axis=1)
    round_delivered = quorums_filled * m
    return sample, failed_round, round_delivered


def _assemble_vector_results(
    block: _Block,
    history: List[np.ndarray],
    active: np.ndarray,
    rounds_completed: np.ndarray,
    messages_sent: np.ndarray,
    bits_sent: np.ndarray,
    delivered: np.ndarray,
    rounds_entered: np.ndarray,
    holder_sends: np.ndarray,
) -> List[VectorExecutionResult]:
    count, n, d = block.count, block.n, block.dimension
    xp = block.xp
    if not (xp.name == "numpy" and xp.dtype_name == "float64"):
        history = [np.asarray(xp.to_numpy(row), dtype=np.float64) for row in history]
        block.values = np.asarray(xp.to_numpy(block.values), dtype=np.float64)
        block.honest_mask = np.asarray(xp.to_numpy(block.honest_mask))
        active = np.asarray(xp.to_numpy(active))
        rounds_completed = np.asarray(xp.to_numpy(rounds_completed))
        messages_sent = np.asarray(xp.to_numpy(messages_sent))
        bits_sent = np.asarray(xp.to_numpy(bits_sent))
        delivered = np.asarray(xp.to_numpy(delivered))
        rounds_entered = np.asarray(xp.to_numpy(rounds_entered))
        holder_sends = np.asarray(xp.to_numpy(holder_sends))
    stacked = np.stack(history)  # (rounds + 1, E, n, d)

    # Per-round ℓ∞ honest diameter: the per-coordinate diameter (faulty
    # columns masked out of max/min), maximised over coordinates.
    honest4 = block.honest_mask[None, :, :, None]
    traj_all = (
        (
            np.where(honest4, stacked, -np.inf).max(axis=2)
            - np.where(honest4, stacked, np.inf).min(axis=2)
        )
        .max(axis=-1)
        .T
    )  # (E, rounds + 1)

    # Whole-block fast path of validate_vector_outputs for the common
    # all-correct case; executions failing any check fall back to the shared
    # checker so reports (violation strings included) stay identical.
    eps_ok_bound = block.epsilon * (1.0 + 1e-9)
    output_spread = traj_all[np.arange(count), rounds_completed]
    agreement_ok = output_spread <= eps_ok_bound
    byz_mask = np.zeros((count, n), dtype=bool)
    for e, problem in enumerate(block.problems):
        for pid in problem.byzantine:
            byz_mask[e, pid] = True
    validity_ref = np.where(byz_mask[:, :, None], np.nan, block.inputs_tensor)
    lo = np.nanmin(validity_ref, axis=1)  # (E, d)
    hi = np.nanmax(validity_ref, axis=1)
    # Box validity concerns the honest outputs only; park non-honest columns
    # on the box floor so one whole-block check covers every execution.
    values_checked = np.where(block.honest_mask[:, :, None], block.values, lo[:, None, :])
    validity_ok = check_box_validity_block(values_checked, lo, hi)
    fast_ok = active & agreement_ok & validity_ok

    values_list = block.values.tolist()
    inputs_list = block.inputs_tensor.tolist()
    traj_rows = traj_all.tolist()
    spread_list = output_spread.tolist()
    completed_list = np.asarray(rounds_completed).tolist()
    messages_list = np.asarray(messages_sent).tolist()
    bits_list = np.asarray(bits_sent).tolist()
    delivered_list = np.asarray(delivered).tolist()
    entered_list = np.asarray(rounds_entered).tolist()
    holder_sends_rows = np.asarray(holder_sends).tolist()

    results: List[VectorExecutionResult] = []
    for e in range(count):
        problem = block.problems[e]
        decided = bool(active[e])
        completed = completed_list[e]
        honest = problem.honest
        values_row = values_list[e]

        outputs: Dict[int, Optional[Tuple[float, ...]]] = {
            pid: (tuple(values_row[pid]) if decided else None) for pid in honest
        }
        if fast_ok[e]:
            report = VectorValidationReport(
                all_decided=True,
                linf_agreement=True,
                box_validity=True,
                max_linf_distance=spread_list[e],
                outputs={pid: vector for pid, vector in outputs.items()},
            )
        else:
            byzantine = set(problem.byzantine)
            reference = [
                tuple(inputs_list[e][pid]) for pid in range(n) if pid not in byzantine
            ]
            report = validate_vector_outputs(
                outputs, reference, block.epsilon, expected_pids=honest
            )

        # Per-coordinate costs are identical (shared structure), so the
        # whole execution's costs are the shared counts times d — exactly
        # the coordinate-wise composition's totals.
        stats = NetworkStats()
        stats.messages_sent = d * messages_list[e]
        stats.bits_sent = d * bits_list[e]
        stats.messages_delivered = d * delivered_list[e]
        if stats.messages_sent:
            stats.messages_by_kind["VALUE"] = stats.messages_sent
        sends_row = holder_sends_rows[e]
        strategy_ids = block.strategy_ids[e]
        for pid in range(n):
            sent = sends_row[pid]
            if pid in strategy_ids:
                sent = n * entered_list[e]
            if sent:
                stats.sends_by_process[pid] = d * sent

        results.append(
            VectorExecutionResult(
                protocol=block.protocol,
                dimension=d,
                report=report,
                outputs=outputs,
                coordinate_results=[],
                runtime="ndbatch",
                stats=stats,
                trajectory=tuple(traj_rows[e][: 1 + completed]),
                rounds=completed,
            )
        )
    return results
