"""Resumable, sharded sweep *jobs* over the JSONL outcome store.

:func:`repro.sim.sweep.run_sweep` executes one grid in one process and
streams outcomes to one file — fine for a workstation run, fragile at fleet
scale: a killed million-cell sweep used to mean starting over (and, worse,
re-opening the store with mode ``"w"`` silently discarded what had finished).
This module wraps the same execution core in a production *job* abstraction:

* **Manifest** — a :class:`SweepJob` owns a directory holding
  ``manifest.json`` (schema version, the full grid spec, seed/engine policy,
  cell count, cell-ID algorithm) next to the outcome stores, so any host —
  or any later session — can validate it is appending to the grid it thinks
  it is.  A spec mismatch fails loudly (:class:`SweepJobError`).
* **Content-addressed cells** — every cell has a stable ID,
  :func:`cell_id`: a SHA-256 digest of its canonical JSON form
  ``(protocol, n, t, epsilon, adversary, workload, seed, engine)``.  IDs are
  identical across processes, hosts and ``PYTHONHASHSEED`` values, which is
  what makes resume and sharding coordination-free.
* **Resume** — ``job.run(resume=True)`` scans the existing store
  (:func:`scan_sweep_store`), *repairs* a truncated trailing line — the
  normal end state of a killed run — by truncating the store back to its
  last complete line, then executes and appends only the missing cells.
  Outcomes are deterministic per cell and job stores carry no wall times,
  so an interrupted-then-resumed store is bit-identical (modulo line order)
  to an uninterrupted one for explicit engines; under ``engine="auto"`` the
  block-setup cost model may demote differently-sized pending sets, so only
  :attr:`~repro.sim.sweep.CellOutcome.engine_used` may differ (never the
  measurements).
* **Sharding** — ``job.run(shard=(i, k))`` hash-partitions the grid by
  :func:`cell_shard`: k independent hosts (or CI matrix jobs) each take a
  disjoint slice whose union is exactly the full grid, no coordinator, no
  cell executed twice.  Each shard appends to its own store file in the job
  directory (or its own copy of the directory — merge by copying files).
* **Incremental aggregation** — :meth:`SweepJob.fold` /
  :func:`fold_sweep_jsonl` stream outcomes from one or many shard stores
  through a :class:`~repro.sim.sweep.SweepSummaryFold`, so summary tables
  over million-cell stores never hold the cells.

Typical fleet use (one shard per CI matrix job)::

    spec = SweepSpec(protocols=("async-crash",), system_sizes=((13, 4),),
                     adversaries=("none", "crash-staggered"),
                     seeds=tuple(range(1000)), engine="auto")
    job = SweepJob(spec, "sweep-out")
    result = job.run(shard=(index, total))    # this host's disjoint slice
    # ... later, any host with all the shard files:
    print(render_records(job.summary(), SUMMARY_COLUMNS))
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.sim.experiments import ExperimentRecord
from repro.sim.sweep import (
    DEFAULT_MAX_BLOCK_SIZE,
    CellOutcome,
    SweepCell,
    SweepSpec,
    SweepSummaryFold,
    _iter_indexed_outcomes,
    _outcome_from_payload,
    _outcome_to_json_line,
    iter_sweep_jsonl,
)

__all__ = [
    "STORE_SCHEMA_VERSION",
    "CELL_ID_ALGORITHM",
    "SweepJobError",
    "SweepJobResult",
    "StoreScan",
    "cell_id",
    "cell_shard",
    "scan_sweep_store",
    "fold_sweep_jsonl",
    "SweepJob",
]

#: Version of the on-disk layout (manifest shape + JSONL line schema).
STORE_SCHEMA_VERSION = 1

#: How cell IDs are derived — recorded in the manifest so a future algorithm
#: change cannot silently mix incompatible IDs in one job directory.
CELL_ID_ALGORITHM = "sha256-canonical-json/16"


class SweepJobError(RuntimeError):
    """A sweep job invariant was violated (manifest mismatch, clobber, …)."""


def cell_id(cell: SweepCell) -> str:
    """Content-addressed ID of one sweep cell: 16 hex chars, stable everywhere.

    The digest is taken over the cell's canonical JSON form (sorted keys,
    no whitespace), so it depends only on the cell's eight fields — never on
    process identity, dict order or ``PYTHONHASHSEED``.  Floats serialise
    via ``repr`` (shortest round-trip form), which is stable across the
    supported Python versions.
    """
    payload = json.dumps(
        {
            "protocol": cell.protocol,
            "n": cell.n,
            "t": cell.t,
            "epsilon": cell.epsilon,
            "adversary": cell.adversary,
            "workload": cell.workload,
            "seed": cell.seed,
            "engine": cell.engine,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def cell_shard(cell: SweepCell, shard_count: int) -> int:
    """Which of ``shard_count`` disjoint slices this cell belongs to.

    Hash partitioning over :func:`cell_id`: every cell lands in exactly one
    shard, the union of all shards is exactly the grid, and the assignment
    is identical on every host — no coordination needed.
    """
    if shard_count < 1:
        raise ValueError("shard_count must be at least 1")
    return int(cell_id(cell), 16) % shard_count


class StoreScan(NamedTuple):
    """Result of scanning one JSONL store for completed work.

    ``valid_bytes`` is the offset just past the last decodable, fully
    written line: everything beyond it (a truncated tail from a killed run,
    or garbage) is unusable and safe to truncate away before appending.
    """

    completed_ids: Set[str]
    valid_bytes: int
    valid_lines: int
    corrupt: bool


def scan_sweep_store(path: str) -> StoreScan:
    """Scan a sweep JSONL store, tolerating a truncated or corrupt tail.

    Reads line by line in binary mode (byte offsets must be exact for the
    repair truncation), collecting the :func:`cell_id` of every complete,
    decodable outcome line.  The scan stops trusting the file at the first
    line that is incomplete (no trailing newline — the normal end state of
    a killed run) or undecodable; ``corrupt`` reports whether such a tail
    exists beyond ``valid_bytes``.
    """
    completed: Set[str] = set()
    valid_bytes = 0
    valid_lines = 0
    corrupt = False
    with open(path, "rb") as handle:
        while True:
            line = handle.readline()
            if not line:
                break
            if not line.endswith(b"\n"):
                corrupt = True  # partial trailing line: write was interrupted
                break
            stripped = line.strip()
            if stripped:
                try:
                    outcome = _outcome_from_payload(json.loads(stripped.decode("utf-8")))
                except (ValueError, KeyError, TypeError):
                    # An undecodable *complete* line means the tail of the
                    # store can no longer be trusted; stop here so the repair
                    # truncation re-executes everything past this point.
                    corrupt = True
                    break
                completed.add(cell_id(outcome.cell))
                valid_lines += 1
            valid_bytes = handle.tell()
    return StoreScan(completed, valid_bytes, valid_lines, corrupt)


def fold_sweep_jsonl(
    paths: Iterable[str],
    fold: Optional[SweepSummaryFold] = None,
) -> SweepSummaryFold:
    """Stream one or many (shard) stores into a :class:`SweepSummaryFold`.

    Outcomes are deduplicated by :func:`cell_id` across files (first
    occurrence wins), so aggregating a directory that holds both an old
    unsharded store and newer shard stores cannot double-count a cell.
    Memory stays proportional to summary groups + one ID per cell seen.
    """
    fold = fold if fold is not None else SweepSummaryFold()
    seen: Set[str] = set()
    for path in paths:
        for outcome in iter_sweep_jsonl(str(path)):
            identity = cell_id(outcome.cell)
            if identity in seen:
                continue
            seen.add(identity)
            fold.update(outcome)
    return fold


@dataclass(frozen=True)
class SweepJobResult:
    """What one :meth:`SweepJob.run` call did."""

    #: Cells in this run's slice of the grid (the whole grid when unsharded).
    total: int
    #: Cells skipped because a completed outcome was already in a store.
    skipped: int
    #: Cells executed and appended by this call.
    executed: int
    #: The store file this call appended to.
    store_path: str
    #: The ``(index, count)`` shard slice, or ``None`` for the full grid.
    shard: Optional[Tuple[int, int]] = None
    #: Whether a truncated/corrupt store tail was repaired before appending.
    repaired: bool = False


class SweepJob:
    """A manifest-carrying, resumable, shardable sweep over one grid spec.

    The job owns ``directory``: ``manifest.json`` plus one JSONL store per
    slice (``cells.jsonl``, or ``cells.shard-00-of-04.jsonl`` …).  All
    execution goes through the same engine core as
    :func:`repro.sim.sweep.run_sweep`, so pool-versus-serial determinism and
    the engine capability matrix carry over unchanged; job stores are
    written in *canonical* line form (no wall times), making them a pure
    function of the grid.
    """

    MANIFEST_NAME = "manifest.json"
    STORE_STEM = "cells"

    def __init__(
        self,
        spec: SweepSpec,
        directory: str,
        workers: Optional[int] = None,
        max_block_size: int = DEFAULT_MAX_BLOCK_SIZE,
    ) -> None:
        self.spec = spec
        self.directory = Path(directory)
        self.workers = workers
        self.max_block_size = max_block_size

    # ---- layout ------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.directory / self.MANIFEST_NAME

    def store_path(self, shard: Optional[Tuple[int, int]] = None) -> Path:
        """The JSONL store for one slice of the grid."""
        if shard is None:
            return self.directory / f"{self.STORE_STEM}.jsonl"
        index, count = self._validate_shard(shard)
        return self.directory / f"{self.STORE_STEM}.shard-{index:02d}-of-{count:02d}.jsonl"

    def store_paths(self) -> List[Path]:
        """Every existing store file of this job, in sorted order."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob(f"{self.STORE_STEM}*.jsonl"))

    # ---- manifest ----------------------------------------------------

    def manifest_payload(self) -> Dict:
        """The manifest document this job's spec implies."""
        spec = self.spec
        return {
            "schema_version": STORE_SCHEMA_VERSION,
            "cell_id_algorithm": CELL_ID_ALGORITHM,
            "spec": {
                "protocols": list(spec.protocols),
                "system_sizes": [list(pair) for pair in spec.system_sizes],
                "adversaries": list(spec.adversaries),
                "workloads": list(spec.workloads),
                "seeds": list(spec.seeds),
                "epsilon": spec.epsilon,
                "engine": spec.engine,
            },
            # The seed axis *is* the seed policy: every cell derives all of
            # its randomness (workload draws, adversary PRF streams) from its
            # own seed value, so the manifest pins the full entropy source.
            "seed_policy": "explicit-seed-axis",
            "engine_policy": spec.engine,
            "cell_count": spec.cell_count,
        }

    def write_manifest(self) -> Path:
        """Atomically write (or validate against) the job manifest."""
        existing = self.load_manifest()
        expected = self.manifest_payload()
        if existing is not None:
            if existing != expected:
                raise SweepJobError(
                    f"manifest {self.manifest_path} does not match this job's "
                    "grid spec — this directory belongs to a different sweep; "
                    "use a fresh directory (stores are content-addressed to "
                    "their manifest's grid)"
                )
            return self.manifest_path
        self.directory.mkdir(parents=True, exist_ok=True)
        temporary = self.manifest_path.with_suffix(".json.tmp")
        temporary.write_text(
            json.dumps(expected, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(temporary, self.manifest_path)
        return self.manifest_path

    def load_manifest(self) -> Optional[Dict]:
        """The manifest on disk, or ``None`` if this job was never started."""
        try:
            text = self.manifest_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        try:
            return json.loads(text)
        except ValueError as error:
            raise SweepJobError(
                f"manifest {self.manifest_path} is not valid JSON: {error}"
            ) from error

    # ---- grid slices -------------------------------------------------

    @staticmethod
    def _validate_shard(shard: Tuple[int, int]) -> Tuple[int, int]:
        index, count = shard
        if count < 1:
            raise ValueError("shard count must be at least 1")
        if not 0 <= index < count:
            raise ValueError(f"shard index {index} outside 0..{count - 1}")
        return index, count

    def cells(self, shard: Optional[Tuple[int, int]] = None) -> List[SweepCell]:
        """This run's slice of the grid, in grid order."""
        grid = self.spec.cells()
        if shard is None:
            return list(grid)
        index, count = self._validate_shard(shard)
        return [cell for cell in grid if cell_shard(cell, count) == index]

    def completed_ids(self) -> Set[str]:
        """Cell IDs with a decodable outcome in any store of this job."""
        completed: Set[str] = set()
        for path in self.store_paths():
            completed |= scan_sweep_store(str(path)).completed_ids
        return completed

    def is_complete(self) -> bool:
        """Whether every grid cell has an outcome across the job's stores."""
        completed = self.completed_ids()
        return all(cell_id(cell) in completed for cell in self.spec.cells())

    # ---- execution ---------------------------------------------------

    def run(
        self,
        resume: bool = True,
        shard: Optional[Tuple[int, int]] = None,
        overwrite: bool = False,
    ) -> SweepJobResult:
        """Execute (the missing part of) this job's slice of the grid.

        With ``resume=True`` (the default) every existing store in the job
        directory is scanned for completed cells, the target store's
        truncated/corrupt tail — the normal end state of a killed run — is
        repaired by truncating back to the last complete line, and only the
        cells without a stored outcome are executed and appended.  With
        ``resume=False`` a non-empty target store is an error unless
        ``overwrite=True`` truncates it (the other stores are never
        touched).  Execution streams through the same engine core as
        :func:`~repro.sim.sweep.run_sweep`, flushing each outcome (batch/
        event) or finished chunk (ndbatch/auto) as the pool returns it.
        """
        self.write_manifest()
        target = self.store_path(shard)
        repaired = False
        completed: Set[str] = set()
        if target.exists() and target.stat().st_size > 0:
            if overwrite:
                target.write_text("", encoding="utf-8")
            elif not resume:
                raise SweepJobError(
                    f"store {target} already holds outcomes; pass resume=True "
                    "to append only missing cells or overwrite=True to discard it"
                )
            else:
                scan = scan_sweep_store(str(target))
                if scan.corrupt:
                    # Truncate the unusable tail so the append below starts
                    # on a clean line boundary (appending after a partial
                    # line would corrupt the next outcome too).
                    with open(target, "r+b") as handle:
                        handle.truncate(scan.valid_bytes)
                    repaired = True
                completed |= scan.completed_ids
        if resume and not overwrite:
            for path in self.store_paths():
                if path != target:
                    completed |= scan_sweep_store(str(path)).completed_ids
        grid = self.cells(shard)
        pending = [cell for cell in grid if cell_id(cell) not in completed]
        executed = 0
        if pending:
            with open(target, "a", encoding="utf-8") as handle:
                for _, outcome in _iter_indexed_outcomes(
                    pending, self.spec.engine, self.workers, self.max_block_size
                ):
                    # Canonical (wall-time-free) lines, one flush per line:
                    # a kill loses at most the line being written, which the
                    # next resume repairs.
                    handle.write(_outcome_to_json_line(outcome, include_wall_time=False))
                    handle.flush()
                    executed += 1
        return SweepJobResult(
            total=len(grid),
            skipped=len(grid) - len(pending),
            executed=executed,
            store_path=str(target),
            shard=shard,
            repaired=repaired,
        )

    # ---- reading & aggregation ----------------------------------------

    def iter_outcomes(self) -> Iterator[CellOutcome]:
        """Stream every stored outcome, deduplicated by cell ID across stores."""
        seen: Set[str] = set()
        for path in self.store_paths():
            for outcome in iter_sweep_jsonl(str(path)):
                identity = cell_id(outcome.cell)
                if identity in seen:
                    continue
                seen.add(identity)
                yield outcome

    def outcomes(self) -> List[CellOutcome]:
        """Every stored outcome, in grid order (missing cells are absent)."""
        by_id = {cell_id(outcome.cell): outcome for outcome in self.iter_outcomes()}
        ordered = []
        for cell in self.spec.cells():
            outcome = by_id.get(cell_id(cell))
            if outcome is not None:
                ordered.append(outcome)
        return ordered

    def fold(self) -> SweepSummaryFold:
        """Incrementally aggregate every store without holding the cells."""
        return fold_sweep_jsonl(str(path) for path in self.store_paths())

    def summary(self) -> List[ExperimentRecord]:
        """Per-configuration summary rows over all stored outcomes."""
        return self.fold().records()
