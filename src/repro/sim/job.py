"""Resumable, sharded sweep *jobs* over the JSONL outcome store.

:func:`repro.sim.sweep.run_sweep` executes one grid in one process and
streams outcomes to one file — fine for a workstation run, fragile at fleet
scale: a killed million-cell sweep used to mean starting over (and, worse,
re-opening the store with mode ``"w"`` silently discarded what had finished).
This module wraps the same execution core in a production *job* abstraction:

* **Manifest** — a :class:`SweepJob` owns a directory holding
  ``manifest.json`` (schema version, the full grid spec, seed/engine policy,
  cell count, cell-ID algorithm) next to the outcome stores, so any host —
  or any later session — can validate it is appending to the grid it thinks
  it is.  A spec mismatch fails loudly (:class:`SweepJobError`).
* **Content-addressed cells** — every cell has a stable ID,
  :func:`cell_id`: a SHA-256 digest of its canonical JSON form
  ``(protocol, n, t, epsilon, adversary, workload, seed, engine)``.  IDs are
  identical across processes, hosts and ``PYTHONHASHSEED`` values, which is
  what makes resume and sharding coordination-free.
* **Resume** — ``job.run(resume=True)`` scans the existing store
  (:func:`scan_sweep_store`), *repairs* a truncated trailing line — the
  normal end state of a killed run — by truncating the store back to its
  last complete line, then executes and appends only the missing cells.
  Outcomes are deterministic per cell and job stores carry no wall times,
  so an interrupted-then-resumed store is bit-identical (modulo line order)
  to an uninterrupted one for explicit engines; under ``engine="auto"`` the
  block-setup cost model may demote differently-sized pending sets, so only
  :attr:`~repro.sim.sweep.CellOutcome.engine_used` may differ (never the
  measurements).
* **Sharding** — ``job.run(shard=(i, k))`` hash-partitions the grid by
  :func:`cell_shard`: k independent hosts (or CI matrix jobs) each take a
  disjoint slice whose union is exactly the full grid, no coordinator, no
  cell executed twice.  Each shard appends to its own store file in the job
  directory (or its own copy of the directory — merge by copying files).
* **Incremental aggregation** — :meth:`SweepJob.fold` /
  :func:`fold_sweep_jsonl` stream outcomes from one or many shard stores
  through a :class:`~repro.sim.sweep.SweepSummaryFold`, so summary tables
  over million-cell stores never hold the cells.

Typical fleet use (one shard per CI matrix job)::

    spec = SweepSpec(protocols=("async-crash",), system_sizes=((13, 4),),
                     adversaries=("none", "crash-staggered"),
                     seeds=tuple(range(1000)), engine="auto")
    job = SweepJob(spec, "sweep-out")
    result = job.run(shard=(index, total))    # this host's disjoint slice
    # ... later, any host with all the shard files:
    print(render_records(job.summary(), SUMMARY_COLUMNS))
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.sim.chaos import ChaosPlan, maybe_truncate_write
from repro.sim.experiments import ExperimentRecord
from repro.sim.resilient import (
    CellFailure,
    RetryPolicy,
    read_quarantine_map,
    write_quarantine_line,
)
from repro.sim.sweep import (
    DEFAULT_MAX_BLOCK_SIZE,
    CellOutcome,
    SweepCell,
    SweepSpec,
    SweepSummaryFold,
    _iter_indexed_outcomes,
    _outcome_from_payload,
    _outcome_to_json_line,
    iter_sweep_jsonl,
)

__all__ = [
    "STORE_SCHEMA_VERSION",
    "CELL_ID_ALGORITHM",
    "SweepJobError",
    "SweepJobResult",
    "SweepJobProgress",
    "CompactionResult",
    "StoreScan",
    "cell_id",
    "cell_shard",
    "scan_sweep_store",
    "fold_sweep_jsonl",
    "SweepJob",
    "spec_from_manifest",
    "parse_shard",
    "main",
]

#: Version of the on-disk layout (manifest shape + JSONL line schema).
#: v2 adds the ``dimension`` cell field and the spec's ``dimensions`` axis;
#: scalar (d=1) cells omit the key everywhere — line bytes, cell IDs and
#: shard assignments of v1 stores are unchanged, so v1 job directories
#: resume/merge/compact under v2 without rewriting (the manifest is upgraded
#: in place by :func:`_normalize_manifest`).
STORE_SCHEMA_VERSION = 2

#: How cell IDs are derived — recorded in the manifest so a future algorithm
#: change cannot silently mix incompatible IDs in one job directory.
CELL_ID_ALGORITHM = "sha256-canonical-json/16"


class SweepJobError(RuntimeError):
    """A sweep job invariant was violated (manifest mismatch, clobber, …)."""


def cell_id(cell: SweepCell) -> str:
    """Content-addressed ID of one sweep cell: 16 hex chars, stable everywhere.

    The digest is taken over the cell's canonical JSON form (sorted keys,
    no whitespace), so it depends only on the cell's fields — never on
    process identity, dict order or ``PYTHONHASHSEED``.  Floats serialise
    via ``repr`` (shortest round-trip form), which is stable across the
    supported Python versions.  ``dimension`` enters the digest only when
    it is not 1, so every scalar cell keeps the ID it had before the
    dimension axis existed — v1 stores stay valid verbatim.
    ``adversary_params`` follows the same omit-when-empty contract: only
    parameterised attack-family cells (:mod:`repro.analysis.attacksearch`)
    carry the key, so parameterless cells keep their historic IDs.
    """
    fields = {
        "protocol": cell.protocol,
        "n": cell.n,
        "t": cell.t,
        "epsilon": cell.epsilon,
        "adversary": cell.adversary,
        "workload": cell.workload,
        "seed": cell.seed,
        "engine": cell.engine,
    }
    if cell.dimension != 1:
        fields["dimension"] = cell.dimension
    if cell.adversary_params:
        fields["adversary_params"] = dict(cell.adversary_params)
    payload = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def cell_shard(cell: SweepCell, shard_count: int) -> int:
    """Which of ``shard_count`` disjoint slices this cell belongs to.

    Hash partitioning over :func:`cell_id`: every cell lands in exactly one
    shard, the union of all shards is exactly the grid, and the assignment
    is identical on every host — no coordination needed.
    """
    if shard_count < 1:
        raise ValueError("shard_count must be at least 1")
    return int(cell_id(cell), 16) % shard_count


def _normalize_manifest(manifest: Dict) -> Dict:
    """Upgrade an older on-disk manifest to the current schema, in memory.

    Every schema bump so far is strictly additive with a defined default for
    old stores, so older manifests are *upgraded for comparison* rather than
    rejected: v1 (pre-``dimensions``) grids were scalar by construction —
    their cell IDs, line bytes and shard assignments are unchanged under v2
    — and manifests written before the resilient layer lack ``retry_policy``
    (absent means ``None``, legacy fail-fast runs).  Returns the manifest
    for chaining; mutates in place.
    """
    if manifest.get("schema_version") == 1:
        manifest["schema_version"] = STORE_SCHEMA_VERSION
        spec = manifest.get("spec")
        if isinstance(spec, dict):
            spec.setdefault("dimensions", [1])
    manifest.setdefault("retry_policy", None)
    return manifest


class StoreScan(NamedTuple):
    """Result of scanning one JSONL store for completed work.

    ``valid_bytes`` is the offset just past the last decodable, fully
    written line: everything beyond it (a truncated tail from a killed run,
    or garbage) is unusable and safe to truncate away before appending.
    """

    completed_ids: Set[str]
    valid_bytes: int
    valid_lines: int
    corrupt: bool


def scan_sweep_store(path: str) -> StoreScan:
    """Scan a sweep JSONL store, tolerating a truncated or corrupt tail.

    Reads line by line in binary mode (byte offsets must be exact for the
    repair truncation), collecting the :func:`cell_id` of every complete,
    decodable outcome line.  The scan stops trusting the file at the first
    line that is incomplete (no trailing newline — the normal end state of
    a killed run) or undecodable; ``corrupt`` reports whether such a tail
    exists beyond ``valid_bytes``.
    """
    completed: Set[str] = set()
    valid_bytes = 0
    valid_lines = 0
    corrupt = False
    with open(path, "rb") as handle:
        while True:
            line = handle.readline()
            if not line:
                break
            if not line.endswith(b"\n"):
                corrupt = True  # partial trailing line: write was interrupted
                break
            stripped = line.strip()
            if stripped:
                try:
                    outcome = _outcome_from_payload(json.loads(stripped.decode("utf-8")))
                except (ValueError, KeyError, TypeError):
                    # An undecodable *complete* line means the tail of the
                    # store can no longer be trusted; stop here so the repair
                    # truncation re-executes everything past this point.
                    corrupt = True
                    break
                completed.add(cell_id(outcome.cell))
                valid_lines += 1
            valid_bytes = handle.tell()
    return StoreScan(completed, valid_bytes, valid_lines, corrupt)


def fold_sweep_jsonl(
    paths: Iterable[str],
    fold: Optional[SweepSummaryFold] = None,
    quarantine_paths: Iterable[str] = (),
) -> SweepSummaryFold:
    """Stream one or many (shard) stores into a :class:`SweepSummaryFold`.

    Outcomes are deduplicated by :func:`cell_id` across files (first
    occurrence wins), so aggregating a directory that holds both an old
    unsharded store and newer shard stores cannot double-count a cell.
    Memory stays proportional to summary groups + one ID per cell seen.

    ``quarantine_paths`` folds in quarantine stores written by the resilient
    layer (:mod:`repro.sim.resilient`): cells with a failure record but no
    stored outcome are counted as *excluded-with-reason* on the fold
    (:attr:`~repro.sim.sweep.SweepSummaryFold.quarantined_count`), never as
    silently missing.  A cell that was quarantined once but succeeded on a
    later retry counts as its outcome, not as quarantined.
    """
    fold = fold if fold is not None else SweepSummaryFold()
    seen: Set[str] = set()
    for path in paths:
        for outcome in iter_sweep_jsonl(str(path)):
            identity = cell_id(outcome.cell)
            if identity in seen:
                continue
            seen.add(identity)
            fold.update(outcome)
    for identity, failure in read_quarantine_map(
        str(path) for path in quarantine_paths
    ).items():
        if identity not in seen:
            fold.note_quarantined(identity, failure.fault_class, cell=failure.cell)
    return fold


@dataclass(frozen=True)
class SweepJobResult:
    """What one :meth:`SweepJob.run` call did."""

    #: Cells in this run's slice of the grid (the whole grid when unsharded).
    total: int
    #: Cells skipped because a completed outcome was already in a store.
    skipped: int
    #: Cells executed and appended by this call.
    executed: int
    #: The store file this call appended to.
    store_path: str
    #: The ``(index, count)`` shard slice, or ``None`` for the full grid.
    shard: Optional[Tuple[int, int]] = None
    #: Whether a truncated/corrupt store tail was repaired before appending.
    repaired: bool = False
    #: Cells this call quarantined (gave up on after retries/demotion).
    quarantined: int = 0
    #: Pending cells excluded because an earlier run already quarantined
    #: them (excluded-with-reason; pass ``retry_quarantined=True`` to
    #: re-attempt them).
    quarantined_excluded: int = 0
    #: The quarantine store beside ``store_path`` (may not exist on disk if
    #: the run was fault-free).
    quarantine_path: Optional[str] = None


@dataclass(frozen=True)
class CompactionResult:
    """What :meth:`SweepJob.compact` did (see its docstring for guarantees)."""

    #: The single canonical store everything was rewritten into.
    store_path: str
    #: Outcome records in the compacted store (= distinct stored cell IDs).
    records: int
    #: Store files removed after their records were folded in (shard stores,
    #: merge leftovers); does not include the canonical store itself.
    removed_paths: Tuple[str, ...] = ()
    #: Duplicate records dropped (same cell stored in several files/lines).
    duplicates_dropped: int = 0


@dataclass(frozen=True)
class SweepJobProgress:
    """A point-in-time progress snapshot of one job (see :meth:`SweepJob.progress`)."""

    #: Cells in the whole grid (the manifest's ``cell_count``).
    total_cells: int
    #: Cells in the running slice (equals ``total_cells`` unsharded); the
    #: whole grid when no run is active.
    slice_cells: int
    #: Slice cells with a stored outcome (pre-existing + this run's).
    completed_cells: int
    #: Slice cells excluded-with-reason (quarantined, no later success).
    quarantined_cells: int
    #: Cells executed and stored by the active run so far.
    executed_this_run: int
    #: Wall-clock seconds since the active run started (0.0 when idle).
    elapsed_seconds: float
    #: Throughput of the active run (executed / elapsed; 0.0 when idle).
    cells_per_second: float
    #: Estimated seconds to finish the slice at the current rate (``None``
    #: when idle or before the first completed cell).
    eta_seconds: Optional[float]

    @property
    def remaining_cells(self) -> int:
        return max(0, self.slice_cells - self.completed_cells - self.quarantined_cells)


class SweepJob:
    """A manifest-carrying, resumable, shardable sweep over one grid spec.

    The job owns ``directory``: ``manifest.json`` plus one JSONL store per
    slice (``cells.jsonl``, or ``cells.shard-00-of-04.jsonl`` …).  All
    execution goes through the same engine core as
    :func:`repro.sim.sweep.run_sweep`, so pool-versus-serial determinism and
    the engine capability matrix carry over unchanged; job stores are
    written in *canonical* line form (no wall times), making them a pure
    function of the grid.
    """

    MANIFEST_NAME = "manifest.json"
    STORE_STEM = "cells"
    #: Quarantine stores use their own stem so :meth:`store_paths`'s
    #: ``cells*.jsonl`` glob can never pick a quarantine file up as a store.
    QUARANTINE_STEM = "quarantine"

    def __init__(
        self,
        spec: SweepSpec,
        directory: str,
        workers: Optional[int] = None,
        max_block_size: int = DEFAULT_MAX_BLOCK_SIZE,
        retry: Optional[RetryPolicy] = None,
        chaos: Optional[ChaosPlan] = None,
    ) -> None:
        self.spec = spec
        self.directory = Path(directory)
        self.workers = workers
        self.max_block_size = max_block_size
        #: Routing execution through the resilient layer is opt-in per job;
        #: the policy is part of the manifest, so every resume of this job
        #: directory must use the same one.
        self.retry = retry
        #: Deterministic fault injection for tests/CI (never set this in a
        #: real run).  Chaos is deliberately *not* part of the manifest: the
        #: injected faults must not change what the store is a record of.
        #: ``None`` falls back to the ``REPRO_CHAOS`` env flag, so CI smoke
        #: jobs can inject faults without touching code.
        self.chaos = chaos if chaos is not None else ChaosPlan.from_env()
        self._progress_state: Optional[Dict] = None

    # ---- layout ------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.directory / self.MANIFEST_NAME

    def store_path(self, shard: Optional[Tuple[int, int]] = None) -> Path:
        """The JSONL store for one slice of the grid."""
        if shard is None:
            return self.directory / f"{self.STORE_STEM}.jsonl"
        index, count = self._validate_shard(shard)
        return self.directory / f"{self.STORE_STEM}.shard-{index:02d}-of-{count:02d}.jsonl"

    def store_paths(self) -> List[Path]:
        """Every existing store file of this job, in sorted order."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob(f"{self.STORE_STEM}*.jsonl"))

    def quarantine_path(self, shard: Optional[Tuple[int, int]] = None) -> Path:
        """The quarantine store for one slice of the grid."""
        if shard is None:
            return self.directory / f"{self.QUARANTINE_STEM}.jsonl"
        index, count = self._validate_shard(shard)
        return (
            self.directory
            / f"{self.QUARANTINE_STEM}.shard-{index:02d}-of-{count:02d}.jsonl"
        )

    def quarantine_paths(self) -> List[Path]:
        """Every existing quarantine store of this job, in sorted order."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob(f"{self.QUARANTINE_STEM}*.jsonl"))

    # ---- manifest ----------------------------------------------------

    def manifest_payload(self) -> Dict:
        """The manifest document this job's spec implies."""
        spec = self.spec
        return {
            "schema_version": STORE_SCHEMA_VERSION,
            "cell_id_algorithm": CELL_ID_ALGORITHM,
            "spec": {
                "protocols": list(spec.protocols),
                "system_sizes": [list(pair) for pair in spec.system_sizes],
                "adversaries": list(spec.adversaries),
                "workloads": list(spec.workloads),
                "seeds": list(spec.seeds),
                "epsilon": spec.epsilon,
                "engine": spec.engine,
                "dimensions": list(spec.dimensions),
            },
            # The seed axis *is* the seed policy: every cell derives all of
            # its randomness (workload draws, adversary PRF streams) from its
            # own seed value, so the manifest pins the full entropy source.
            "seed_policy": "explicit-seed-axis",
            "engine_policy": spec.engine,
            "cell_count": spec.cell_count,
            # The retry policy is part of the reproducibility contract: a
            # resume that retried/quarantined differently from the run it
            # continues would produce a different store.  None = the legacy
            # fail-fast execution paths.
            "retry_policy": None if self.retry is None else self.retry.as_payload(),
        }

    def write_manifest(self) -> Path:
        """Atomically write (or validate against) the job manifest."""
        existing = self.load_manifest()
        expected = self.manifest_payload()
        if existing is not None:
            _normalize_manifest(existing)
            if existing != expected:
                raise SweepJobError(
                    f"manifest {self.manifest_path} does not match this job's "
                    "grid spec — this directory belongs to a different sweep; "
                    "use a fresh directory (stores are content-addressed to "
                    "their manifest's grid)"
                )
            return self.manifest_path
        self.directory.mkdir(parents=True, exist_ok=True)
        temporary = self.manifest_path.with_suffix(".json.tmp")
        temporary.write_text(
            json.dumps(expected, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(temporary, self.manifest_path)
        return self.manifest_path

    def load_manifest(self) -> Optional[Dict]:
        """The manifest on disk, or ``None`` if this job was never started."""
        try:
            text = self.manifest_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        try:
            return json.loads(text)
        except ValueError as error:
            raise SweepJobError(
                f"manifest {self.manifest_path} is not valid JSON: {error}"
            ) from error

    # ---- grid slices -------------------------------------------------

    @staticmethod
    def _validate_shard(shard: Tuple[int, int]) -> Tuple[int, int]:
        index, count = shard
        if count < 1:
            raise ValueError("shard count must be at least 1")
        if not 0 <= index < count:
            raise ValueError(f"shard index {index} outside 0..{count - 1}")
        return index, count

    def cells(self, shard: Optional[Tuple[int, int]] = None) -> List[SweepCell]:
        """This run's slice of the grid, in grid order."""
        grid = self.spec.cells()
        if shard is None:
            return list(grid)
        index, count = self._validate_shard(shard)
        return [cell for cell in grid if cell_shard(cell, count) == index]

    def completed_ids(self) -> Set[str]:
        """Cell IDs with a decodable outcome in any store of this job."""
        completed: Set[str] = set()
        for path in self.store_paths():
            completed |= scan_sweep_store(str(path)).completed_ids
        return completed

    def is_complete(self) -> bool:
        """Whether every grid cell has an outcome across the job's stores."""
        completed = self.completed_ids()
        return all(cell_id(cell) in completed for cell in self.spec.cells())

    # ---- execution ---------------------------------------------------

    def run(
        self,
        resume: bool = True,
        shard: Optional[Tuple[int, int]] = None,
        overwrite: bool = False,
        retry_quarantined: bool = False,
        on_progress: Optional[Callable[[SweepJobProgress], None]] = None,
    ) -> SweepJobResult:
        """Execute (the missing part of) this job's slice of the grid.

        With ``resume=True`` (the default) every existing store in the job
        directory is scanned for completed cells, the target store's
        truncated/corrupt tail — the normal end state of a killed run — is
        repaired by truncating back to the last complete line, and only the
        cells without a stored outcome are executed and appended.  With
        ``resume=False`` a non-empty target store is an error unless
        ``overwrite=True`` truncates it (the other stores are never
        touched).  Execution streams through the same engine core as
        :func:`~repro.sim.sweep.run_sweep`, flushing each outcome (batch/
        event) or finished chunk (ndbatch/auto) as the pool returns it.

        Cells quarantined by an earlier run are *excluded-with-reason*: they
        are not re-executed (a deterministic poisoned cell would re-crash
        every resume) unless ``retry_quarantined=True`` lifts the exclusion.
        When the job carries a :class:`~repro.sim.resilient.RetryPolicy`
        (or a chaos plan), execution routes through the fault-tolerant layer
        and newly given-up cells stream to the slice's quarantine store.

        ``on_progress`` is called with a :class:`SweepJobProgress` snapshot
        after every stored outcome and every quarantined cell.
        """
        self.write_manifest()
        target = self.store_path(shard)
        repaired = False
        had_outcomes = False
        completed: Set[str] = set()
        if target.exists() and target.stat().st_size > 0:
            if overwrite:
                target.write_text("", encoding="utf-8")
            elif not resume:
                raise SweepJobError(
                    f"store {target} already holds outcomes; pass resume=True "
                    "to append only missing cells or overwrite=True to discard it"
                )
            else:
                scan = scan_sweep_store(str(target))
                if scan.corrupt:
                    # Truncate the unusable tail so the append below starts
                    # on a clean line boundary (appending after a partial
                    # line would corrupt the next outcome too).
                    with open(target, "r+b") as handle:
                        handle.truncate(scan.valid_bytes)
                    repaired = True
                completed |= scan.completed_ids
                had_outcomes = scan.valid_lines > 0
        if resume and not overwrite:
            for path in self.store_paths():
                if path != target:
                    completed |= scan_sweep_store(str(path)).completed_ids
        quarantined_before = (
            read_quarantine_map(str(path) for path in self.quarantine_paths())
            if resume and not overwrite
            else {}
        )
        grid = self.cells(shard)
        pending: List[SweepCell] = []
        quarantined_excluded = 0
        for cell in grid:
            identity = cell_id(cell)
            if identity in completed:
                continue
            if identity in quarantined_before and not retry_quarantined:
                quarantined_excluded += 1
                continue
            pending.append(cell)
        executed = 0
        quarantined = 0
        quarantine_target = self.quarantine_path(shard)
        quarantine_handle = None
        # The store generation distinguishes a fresh store (1) from one that
        # already held outcomes (2) — chaos truncate-write rules use it to
        # hit the first write but spare the re-write after repair.
        generation = 2 if had_outcomes else 1
        progress = {
            "start": time.monotonic(),
            "slice_cells": len(grid),
            "completed": len(grid) - len(pending) - quarantined_excluded,
            "quarantined": quarantined_excluded,
            "executed": 0,
        }
        self._progress_state = progress

        def emit_progress() -> None:
            if on_progress is not None:
                on_progress(self.progress())

        def record_failure(failure: CellFailure) -> None:
            nonlocal quarantine_handle, quarantined
            if quarantine_handle is None:  # lazily: fault-free runs → no file
                quarantine_handle = open(quarantine_target, "a", encoding="utf-8")
            write_quarantine_line(quarantine_handle, failure)
            quarantined += 1
            progress["quarantined"] += 1
            emit_progress()

        try:
            if pending:
                with open(target, "a", encoding="utf-8") as handle:
                    for _, outcome in _iter_indexed_outcomes(
                        pending,
                        self.spec.engine,
                        self.workers,
                        self.max_block_size,
                        retry=self.retry,
                        chaos=self.chaos,
                        on_failure=record_failure,
                    ):
                        # Canonical (wall-time-free) lines, one flush per
                        # line: a kill loses at most the line being written,
                        # which the next resume repairs.
                        line = _outcome_to_json_line(outcome, include_wall_time=False)
                        if self.chaos is not None:
                            maybe_truncate_write(
                                self.chaos,
                                cell_id(outcome.cell),
                                handle,
                                line,
                                attempt=generation,
                            )
                        handle.write(line)
                        handle.flush()
                        executed += 1
                        progress["executed"] += 1
                        progress["completed"] += 1
                        emit_progress()
        finally:
            self._progress_state = None
            if quarantine_handle is not None:
                quarantine_handle.close()
        return SweepJobResult(
            total=len(grid),
            skipped=len(grid) - len(pending) - quarantined_excluded,
            executed=executed,
            store_path=str(target),
            shard=shard,
            repaired=repaired,
            quarantined=quarantined,
            quarantined_excluded=quarantined_excluded,
            quarantine_path=str(quarantine_target),
        )

    # ---- progress ----------------------------------------------------

    def progress(self) -> SweepJobProgress:
        """A point-in-time snapshot: completion, throughput, ETA, quarantine.

        During an active :meth:`run` the snapshot reflects the run's live
        counters (cells/second and ETA are computed over the run's slice of
        the manifest cell count); between runs it is derived from the stores
        on disk, with zero rate and no ETA.
        """
        total = self.spec.cell_count
        state = self._progress_state
        if state is not None:
            elapsed = max(time.monotonic() - state["start"], 1e-9)
            rate = state["executed"] / elapsed
            remaining = max(
                0, state["slice_cells"] - state["completed"] - state["quarantined"]
            )
            eta = remaining / rate if state["executed"] > 0 else None
            return SweepJobProgress(
                total_cells=total,
                slice_cells=state["slice_cells"],
                completed_cells=state["completed"],
                quarantined_cells=state["quarantined"],
                executed_this_run=state["executed"],
                elapsed_seconds=elapsed,
                cells_per_second=rate,
                eta_seconds=eta,
            )
        completed = self.completed_ids()
        quarantined = {
            identity
            for identity in read_quarantine_map(
                str(path) for path in self.quarantine_paths()
            )
            if identity not in completed
        }
        return SweepJobProgress(
            total_cells=total,
            slice_cells=total,
            completed_cells=len(completed),
            quarantined_cells=len(quarantined),
            executed_this_run=0,
            elapsed_seconds=0.0,
            cells_per_second=0.0,
            eta_seconds=None,
        )

    # ---- merging shard directories ------------------------------------

    def merge(self, sources: Sequence[Union[str, Path]]) -> List[Path]:
        """Pool the store files of other job directories into this one.

        The fleet pattern: ``k`` hosts each ran a shard into their own copy
        of the job directory; merging copies every store *and quarantine*
        file into this job's directory so :meth:`fold`/:meth:`outcomes` see
        the union.  Every source's manifest must match this job's on schema
        version, cell-ID algorithm and the full grid spec — pooling stores
        from a different grid would silently corrupt the union, so any
        mismatch (or a missing manifest) fails loudly with
        :class:`SweepJobError` before anything is copied.  A same-named file
        that already exists here must be byte-identical (the no-op of
        merging a directory twice); differing content is an error.  Returns
        the files newly copied in.
        """
        self.write_manifest()
        expected = self.manifest_payload()
        directories = [Path(source) for source in sources]
        for directory in directories:
            manifest_path = directory / self.MANIFEST_NAME
            try:
                manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            except FileNotFoundError:
                raise SweepJobError(
                    f"cannot merge {directory}: no {self.MANIFEST_NAME} — not a "
                    "sweep job directory"
                ) from None
            except ValueError as error:
                raise SweepJobError(
                    f"cannot merge {directory}: manifest is not valid JSON: {error}"
                ) from error
            _normalize_manifest(manifest)
            for key in ("schema_version", "cell_id_algorithm", "spec"):
                if manifest.get(key) != expected[key]:
                    raise SweepJobError(
                        f"cannot merge {directory}: manifest {key!r} mismatch "
                        f"({manifest.get(key)!r} != {expected[key]!r}) — its "
                        "stores belong to a different sweep"
                    )
        copied: List[Path] = []
        for directory in directories:
            for pattern in (
                f"{self.STORE_STEM}*.jsonl",
                f"{self.QUARANTINE_STEM}*.jsonl",
            ):
                for path in sorted(directory.glob(pattern)):
                    destination = self.directory / path.name
                    data = path.read_bytes()
                    if destination.exists():
                        if destination.read_bytes() == data:
                            continue
                        raise SweepJobError(
                            f"cannot merge {path}: {destination} already exists "
                            "with different content — the same slice was run "
                            "with different outcomes or policies; resolve "
                            "manually"
                        )
                    destination.write_bytes(data)
                    copied.append(destination)
        return copied

    # ---- store compaction ---------------------------------------------

    def compact(self) -> CompactionResult:
        """Rewrite this job's stores as one canonical-order store.

        Merged, sharded, repaired or append-heavy job directories accumulate
        many store files whose line order is execution order (and may hold
        duplicate outcomes for the same cell across files).  Compaction folds
        every store into the single unsharded ``cells.jsonl``, records in
        *grid order* and canonical line form, then removes the other store
        files — the exact record set :meth:`iter_outcomes` yielded before
        (first store wins on duplicates, matching its semantics), just laid
        out as the store an uninterrupted single-process run would have
        written.  Quarantine stores are never touched.

        The rewrite is manifest-validated (the directory must belong to this
        job's grid, and every stored cell must be *in* that grid) and atomic
        (temp file + ``os.replace``; the old stores are removed only after
        the canonical store is durably in place).  It refuses to run
        mid-sweep: while this job object has an active :meth:`run`, or while
        any store has a truncated/corrupt tail — the signature of a killed
        or still-writing run — compaction raises :class:`SweepJobError`
        (``run(resume=True)`` repairs the tail first).
        """
        self.write_manifest()
        if self._progress_state is not None:
            raise SweepJobError(
                "cannot compact while a run is active on this job — wait for "
                "SweepJob.run to return"
            )
        store_paths = self.store_paths()
        for path in store_paths:
            if scan_sweep_store(str(path)).corrupt:
                raise SweepJobError(
                    f"cannot compact: {path} has a truncated/corrupt tail "
                    "(a killed or still-running sweep?) — finish or resume "
                    "the job first (run(resume=True) repairs the tail)"
                )
        grid_ids = {cell_id(cell): cell for cell in self.spec.cells()}
        by_id: Dict[str, CellOutcome] = {}
        duplicates = 0
        for path in store_paths:
            for outcome in iter_sweep_jsonl(str(path)):
                identity = cell_id(outcome.cell)
                if identity not in grid_ids:
                    raise SweepJobError(
                        f"cannot compact: {path} holds an outcome for cell "
                        f"{identity} ({outcome.cell}) that is not in this "
                        "job's grid — the store belongs to a different sweep"
                    )
                if identity in by_id:
                    duplicates += 1
                    continue
                by_id[identity] = outcome
        canonical = self.store_path()
        temporary = canonical.with_suffix(".jsonl.tmp")
        with open(temporary, "w", encoding="utf-8") as handle:
            for cell in self.spec.cells():
                outcome = by_id.get(cell_id(cell))
                if outcome is not None:
                    handle.write(_outcome_to_json_line(outcome, include_wall_time=False))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, canonical)
        removed = []
        for path in store_paths:
            if path != canonical:
                path.unlink()
                removed.append(str(path))
        return CompactionResult(
            store_path=str(canonical),
            records=len(by_id),
            removed_paths=tuple(removed),
            duplicates_dropped=duplicates,
        )

    # ---- reading & aggregation ----------------------------------------

    def iter_outcomes(self) -> Iterator[CellOutcome]:
        """Stream every stored outcome, deduplicated by cell ID across stores."""
        seen: Set[str] = set()
        for path in self.store_paths():
            for outcome in iter_sweep_jsonl(str(path)):
                identity = cell_id(outcome.cell)
                if identity in seen:
                    continue
                seen.add(identity)
                yield outcome

    def outcomes(self) -> List[CellOutcome]:
        """Every stored outcome, in grid order (missing cells are absent)."""
        by_id = {cell_id(outcome.cell): outcome for outcome in self.iter_outcomes()}
        ordered = []
        for cell in self.spec.cells():
            outcome = by_id.get(cell_id(cell))
            if outcome is not None:
                ordered.append(outcome)
        return ordered

    def fold(self) -> SweepSummaryFold:
        """Incrementally aggregate every store without holding the cells.

        Quarantined cells fold in as excluded-with-reason counts
        (:attr:`~repro.sim.sweep.SweepSummaryFold.quarantined_count`).
        """
        return fold_sweep_jsonl(
            (str(path) for path in self.store_paths()),
            quarantine_paths=(str(path) for path in self.quarantine_paths()),
        )

    def summary(self) -> List[ExperimentRecord]:
        """Per-configuration summary rows over all stored outcomes."""
        return self.fold().records()


# ----------------------------------------------------------------------
# Command line: python -m repro.sim.job run --shard I/K ...
# ----------------------------------------------------------------------


def spec_from_manifest(payload: Dict) -> SweepSpec:
    """Rebuild the :class:`~repro.sim.sweep.SweepSpec` a manifest records.

    The inverse of :meth:`SweepJob.manifest_payload`'s ``spec`` block, so a
    CLI shard worker pointed at an existing job directory needs no grid
    flags at all — the manifest *is* the grid.
    """
    spec = payload["spec"]
    return SweepSpec(
        protocols=tuple(spec["protocols"]),
        system_sizes=tuple((int(n), int(t)) for n, t in spec["system_sizes"]),
        adversaries=tuple(spec["adversaries"]),
        workloads=tuple(spec["workloads"]),
        seeds=tuple(int(seed) for seed in spec["seeds"]),
        epsilon=float(spec["epsilon"]),
        engine=spec["engine"],
        # Absent in v1 manifests: those grids were scalar by construction.
        dimensions=tuple(int(d) for d in spec.get("dimensions", [1])),
    )


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse ``"I/K"`` (e.g. ``2/8``) into a validated ``(index, count)``."""
    index_text, separator, count_text = text.partition("/")
    try:
        if not separator:
            raise ValueError
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"shard must look like I/K (e.g. 2/8), got {text!r}"
        ) from None
    return SweepJob._validate_shard((index, count))


def _parse_seeds(text: str) -> Tuple[int, ...]:
    """Parse a seed axis: ``0..99`` (inclusive range) or ``0,1,7`` (list)."""
    if ".." in text:
        low_text, _, high_text = text.partition("..")
        low, high = int(low_text), int(high_text)
        if high < low:
            raise ValueError(f"seed range {text!r} is empty")
        return tuple(range(low, high + 1))
    return tuple(int(part) for part in text.split(",") if part)


def _parse_sizes(text: str) -> Tuple[Tuple[int, int], ...]:
    """Parse the ``(n, t)`` axis: ``7:2,4:1`` → ``((7, 2), (4, 1))``."""
    sizes = []
    for part in text.split(","):
        if not part:
            continue
        n_text, separator, t_text = part.partition(":")
        if not separator:
            raise ValueError(f"size must look like n:t (e.g. 7:2), got {part!r}")
        sizes.append((int(n_text), int(t_text)))
    if not sizes:
        raise ValueError(f"no sizes in {text!r}")
    return tuple(sizes)


def _parse_dimensions(text: str) -> Tuple[int, ...]:
    """Parse a dimensions axis: a comma list of positive ints, e.g. ``1,2,3``."""
    dimensions = tuple(int(part) for part in text.split(",") if part)
    if not dimensions:
        raise ValueError(f"no dimensions in {text!r}")
    if any(dimension < 1 for dimension in dimensions):
        raise ValueError(f"dimensions must be positive, got {text!r}")
    return dimensions


def _job_from_args(args) -> SweepJob:
    """Build the job from CLI flags, or from the directory's manifest."""
    probe = SweepJob(
        SweepSpec(protocols=("sync",), system_sizes=((4, 1),)), args.directory
    )
    manifest = probe.load_manifest()
    if args.protocols is None:
        if manifest is None:
            raise SweepJobError(
                f"{probe.manifest_path} does not exist and no grid flags were "
                "given; pass --protocols/--sizes (plus optional axes) to "
                "define the grid, or point --dir at an existing job"
            )
        spec = spec_from_manifest(manifest)
        retry_payload = manifest.get("retry_policy")
        retry = (
            None if retry_payload is None else RetryPolicy.from_payload(retry_payload)
        )
    else:
        if args.sizes is None:
            raise SweepJobError("--protocols requires --sizes (n:t pairs)")
        spec = SweepSpec(
            protocols=tuple(args.protocols.split(",")),
            system_sizes=_parse_sizes(args.sizes),
            adversaries=tuple(args.adversaries.split(",")),
            workloads=tuple(args.workloads.split(",")),
            seeds=_parse_seeds(args.seeds),
            epsilon=args.epsilon,
            engine=args.engine,
            dimensions=_parse_dimensions(args.dimensions),
        )
        retry = RetryPolicy(max_attempts=args.retry) if args.retry else None
    return SweepJob(
        spec,
        args.directory,
        workers=args.workers,
        max_block_size=args.max_block_size,
        retry=retry,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI front door for sweep jobs — one shard worker per invocation.

    ``run`` executes (a shard of) a job, resumable by default; ``progress``
    and ``summary`` inspect an existing job directory.  Array backend,
    dtype and planner budget are taken from the ``REPRO_ARRAY_BACKEND`` /
    ``REPRO_ARRAY_DTYPE`` / ``REPRO_BLOCK_BUDGET_BYTES`` environment
    variables (see :mod:`repro.core.backend`, :mod:`repro.sim.planner`), so
    a CI matrix can vary them without changing the manifest.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.job",
        description="Resumable, sharded sweep jobs over the JSONL store.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="execute (a shard of) a job, resuming by default"
    )
    run_parser.add_argument("--dir", dest="directory", required=True,
                            help="job directory (manifest + stores)")
    run_parser.add_argument("--shard", type=parse_shard, default=None,
                            metavar="I/K",
                            help="run only slice I of K disjoint slices")
    run_parser.add_argument("--protocols", default=None,
                            help="comma list (omit to reuse the manifest)")
    run_parser.add_argument("--sizes", default=None,
                            help="comma list of n:t pairs, e.g. 7:2,10:3")
    run_parser.add_argument("--adversaries", default="none")
    run_parser.add_argument("--workloads", default="uniform")
    run_parser.add_argument("--seeds", default="0",
                            help="0..99 (inclusive range) or 0,1,7")
    run_parser.add_argument("--dimensions", default="1",
                            help="comma list of value dimensions, e.g. 1,2,3 "
                                 "(d > 1 runs vector agreement in R^d)")
    run_parser.add_argument("--epsilon", type=float, default=1e-3)
    run_parser.add_argument("--engine", default="auto",
                            choices=("auto", "batch", "ndbatch", "event"))
    run_parser.add_argument("--workers", type=int, default=None)
    run_parser.add_argument("--max-block-size", type=int,
                            default=DEFAULT_MAX_BLOCK_SIZE)
    run_parser.add_argument("--retry", type=int, default=0, metavar="N",
                            help="retry failing cells up to N attempts "
                                 "(quarantine after); 0 = fail fast")
    run_parser.add_argument("--no-resume", action="store_true",
                            help="refuse to append to an existing store")
    run_parser.add_argument("--overwrite", action="store_true",
                            help="discard this slice's existing store first")
    run_parser.add_argument("--retry-quarantined", action="store_true",
                            help="re-execute previously quarantined cells")

    for name in ("progress", "summary", "compact"):
        sub = commands.add_parser(
            name,
            help={
                "progress": "print completed/remaining counts",
                "summary": "print the per-configuration summary table",
                "compact": "rewrite the job's stores as one canonical-order "
                           "store (refuses mid-sweep)",
            }[name],
        )
        sub.add_argument("--dir", dest="directory", required=True)

    args = parser.parse_args(argv)

    if args.command == "run":
        job = _job_from_args(args)
        result = job.run(
            resume=not args.no_resume,
            shard=args.shard,
            overwrite=args.overwrite,
            retry_quarantined=args.retry_quarantined,
        )
        shard_note = (
            "" if args.shard is None else f" (shard {args.shard[0]}/{args.shard[1]})"
        )
        print(
            f"{job.store_path(args.shard)}{shard_note}: "
            f"{result.executed} executed, {result.skipped} skipped, "
            f"{result.quarantined} quarantined, {result.total} in slice"
        )
        return 0 if result.quarantined == 0 else 1

    probe = SweepJob(
        SweepSpec(protocols=("sync",), system_sizes=((4, 1),)), args.directory
    )
    manifest = probe.load_manifest()
    if manifest is None:
        raise SweepJobError(f"no job manifest in {args.directory}")
    job = SweepJob(spec_from_manifest(manifest), args.directory)
    if args.command == "compact":
        # compact() re-validates the manifest, whose retry_policy is part of
        # the document — carry it over so the comparison sees this job as
        # the one the directory belongs to.
        retry_payload = manifest.get("retry_policy")
        if retry_payload is not None:
            job.retry = RetryPolicy.from_payload(retry_payload)
        compaction = job.compact()
        print(
            f"{compaction.store_path}: {compaction.records} records in grid "
            f"order, {compaction.duplicates_dropped} duplicates dropped, "
            f"{len(compaction.removed_paths)} store file(s) removed"
        )
        return 0
    if args.command == "progress":
        progress = job.progress()
        print(
            f"{args.directory}: {progress.completed_cells}/{progress.total_cells} "
            f"complete, {progress.remaining_cells} remaining, "
            f"{progress.quarantined_cells} quarantined"
        )
        return 0
    from repro.analysis.tables import render_fold
    from repro.sim.sweep import SUMMARY_COLUMNS

    print(render_fold(job.fold(), SUMMARY_COLUMNS, title=f"sweep job {args.directory}"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
