"""Runtime-agnostic process and context interfaces.

Approximate-agreement protocols in this library are written as *event-driven
state machines* (:class:`Process`) that are completely independent of the
runtime that drives them.  Two runtimes are provided:

* :mod:`repro.net.network` — a deterministic discrete-event simulator, used by
  the test-suite and the benchmarks because it is fast and exactly
  reproducible, and because it lets adversarial delay policies realise
  worst-case schedules on demand;
* :mod:`repro.net.asyncio_runtime` — an ``asyncio``-based runtime in which each
  process is a coroutine with an inbox queue, demonstrating that the very same
  protocol objects run over a "real" concurrent substrate.

A process interacts with the outside world only through its
:class:`ProcessContext`: it can send a message to a single process, multicast a
message to everybody, record an output, and halt.  The context also exposes the
process identifier, the system size ``n`` and the current (simulated or wall)
time, which protocols may use for logging but never for control flow — the
model is fully asynchronous and has no clocks.
"""

from __future__ import annotations

import abc
from typing import Any, List, Optional, Protocol, runtime_checkable

from repro.net.message import Message

__all__ = ["ProcessContext", "Process", "ProcessCrashed"]


class ProcessCrashed(Exception):
    """Raised internally by runtimes to unwind a process that has crashed."""


@runtime_checkable
class ProcessContext(Protocol):
    """The interface a runtime exposes to a running :class:`Process`."""

    @property
    def process_id(self) -> int:
        """Identifier of the running process (``0 .. n-1``)."""

    @property
    def n(self) -> int:
        """Total number of processes in the system."""

    @property
    def time(self) -> float:
        """Current simulated (or wall-clock) time.  Informational only."""

    def send(self, recipient: int, message: Message) -> None:
        """Send ``message`` to ``recipient`` over the reliable channel."""

    def multicast(self, message: Message) -> None:
        """Send ``message`` to every process, including the sender itself."""

    def output(self, value: Any) -> None:
        """Record the process's protocol output (its decision value)."""

    def halt(self) -> None:
        """Stop the process: no further events will be delivered to it."""


class Process(abc.ABC):
    """Base class for event-driven protocol state machines.

    Subclasses implement :meth:`on_start` (called exactly once, when the
    process acquires its input and the runtime starts it) and
    :meth:`on_message` (called for every delivered message).  Synchronous
    protocols additionally implement :meth:`on_round_timeout`, which a
    lockstep runner calls at the end of every synchronous round; asynchronous
    runtimes never call it.

    A process must not retain the context between callbacks in a way that
    outlives the runtime; runtimes pass a live context to every callback.
    """

    #: Identifier of this process; assigned by the runtime before start.
    process_id: int = -1

    def bind(self, process_id: int) -> "Process":
        """Associate this process object with an identifier and return it."""
        self.process_id = process_id
        return self

    @abc.abstractmethod
    def on_start(self, ctx: ProcessContext) -> None:
        """Called once when the process starts with its input available."""

    @abc.abstractmethod
    def on_message(self, ctx: ProcessContext, sender: int, message: Message) -> None:
        """Called whenever a message from ``sender`` is delivered."""

    def on_round_timeout(self, ctx: ProcessContext, round_number: int) -> None:
        """Called by *synchronous* runners at the end of round ``round_number``.

        Asynchronous runtimes never call this.  The default implementation
        does nothing, so purely asynchronous protocols can ignore it.
        """

    # ------------------------------------------------------------------
    # Introspection helpers used by runners, metrics and tests.
    # ------------------------------------------------------------------

    @property
    def output_value(self) -> Optional[Any]:
        """The value this process output, or ``None`` if it has not decided."""
        return getattr(self, "_output_value", None)

    @property
    def has_output(self) -> bool:
        """Whether the process has recorded an output."""
        return getattr(self, "_has_output", False)

    def record_output(self, value: Any) -> None:
        """Record ``value`` as this process's output (runtimes call this)."""
        if not getattr(self, "_has_output", False):
            self._output_value = value
            self._has_output = True

    def describe(self) -> str:
        """A short human-readable description used in logs and reports."""
        return f"{type(self).__name__}(pid={self.process_id})"


def collect_outputs(processes: List[Process]) -> List[Optional[Any]]:
    """Return the list of outputs of ``processes`` (``None`` for undecided)."""
    return [p.output_value if p.has_output else None for p in processes]
