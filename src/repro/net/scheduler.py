"""Deterministic discrete-event scheduler.

The asynchronous model of the paper has no global clock: the adversary picks
an arbitrary (but finite) delay for every message.  To *simulate* that model
we use a classic discrete-event engine: every pending message delivery (or
timer) is an event with a simulated timestamp, and events are executed in
timestamp order.  Ties are broken by a monotonically increasing sequence
number so that runs are exactly reproducible — two runs with the same seed and
the same adversary produce the same schedule, event for event.

Simulated time has no semantic meaning for the protocols (they never read the
clock for control flow); it is only the mechanism by which a delay policy
expresses *orderings* of deliveries.  The "round complexity" reported by the
evaluation harness is computed from protocol-level round counters, not from
simulated time, matching the paper's definition of an asynchronous round.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

__all__ = ["Event", "EventScheduler", "SchedulerError"]


class SchedulerError(RuntimeError):
    """Raised on scheduler misuse (e.g. scheduling an event in the past)."""


@dataclass(order=True)
class Event:
    """A single scheduled event.

    Events compare by ``(time, sequence)`` so that the event queue is a stable
    priority queue: events scheduled earlier at the same timestamp run first.
    """

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True


class EventScheduler:
    """A deterministic event queue with simulated time.

    Examples
    --------
    >>> sched = EventScheduler()
    >>> order = []
    >>> _ = sched.schedule(2.0, lambda: order.append("b"))
    >>> _ = sched.schedule(1.0, lambda: order.append("a"))
    >>> sched.run()
    2
    >>> order
    ['a', 'b']
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._executed = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._queue)

    @property
    def executed(self) -> int:
        """Number of events executed so far."""
        return self._executed

    def __len__(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SchedulerError(f"cannot schedule an event {delay} time units in the past")
        return self.schedule_at(self._now + delay, action, label=label)

    def schedule_at(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` to run at absolute simulated time ``time``."""
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule an event at time {time}; current time is {self._now}"
            )
        event = Event(time=time, sequence=next(self._sequence), action=action, label=label)
        heapq.heappush(self._queue, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next non-cancelled event.  Returns ``False`` if idle."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._executed += 1
            event.action()
            return True
        return False

    def run(
        self,
        max_events: Optional[int] = None,
        until_time: Optional[float] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Run events until the queue drains or a stopping condition is met.

        Parameters
        ----------
        max_events:
            Stop after executing this many events (safety valve for tests).
        until_time:
            Stop before executing any event scheduled strictly later than this
            simulated time.
        stop_when:
            Predicate evaluated after every executed event; when it returns
            ``True`` the run stops.  Used by runners to stop as soon as every
            honest process has produced an output.

        Returns
        -------
        int
            The number of events executed by this call.
        """
        executed_before = self._executed
        while self._queue:
            if max_events is not None and self._executed - executed_before >= max_events:
                break
            if until_time is not None:
                next_event = self._peek()
                if next_event is None or next_event.time > until_time:
                    break
            if not self.step():
                break
            if stop_when is not None and stop_when():
                break
        return self._executed - executed_before

    def _peek(self) -> Optional[Event]:
        """Return the next non-cancelled event without executing it."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None
