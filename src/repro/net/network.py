"""Simulated asynchronous message-passing network.

This module provides the execution substrate the paper assumes: ``n``
processes, fully connected by reliable authenticated channels, with message
delays chosen adversarially (but finitely) for honest senders.  It is a
deterministic discrete-event simulation built on
:class:`repro.net.scheduler.EventScheduler`.

Key components
--------------

``DelayModel``
    Decides the delivery delay of every message.  Concrete models include a
    constant delay, seeded random delays, and (in :mod:`repro.net.adversary`)
    adversarial policies that try to maximise the divergence between the value
    multisets collected by different honest processes — the worst case for the
    convergence analysis.

``FaultPlan``
    Decides which processes are faulty and how: crash faults (possibly in the
    middle of a multicast, so that only a prefix of the recipients receive the
    message) or Byzantine faults (the process's protocol object is replaced by
    an arbitrary adversarial behaviour).

``SimulatedNetwork``
    Owns the processes, the scheduler, the delay model and the fault plan;
    exposes per-process contexts implementing
    :class:`repro.net.interfaces.ProcessContext`; and records the statistics
    (message count, bits, deliveries) used by the evaluation harness.

The network never drops or corrupts messages of honest senders — channels are
reliable and authenticated exactly as in the paper — and Byzantine processes
cannot forge messages on behalf of other processes, because every delivery is
attributed to the true sender by the substrate itself.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.net.interfaces import Process, ProcessContext
from repro.net.message import Message, message_bits
from repro.net.scheduler import EventScheduler

__all__ = [
    "DelayModel",
    "ConstantDelay",
    "UniformRandomDelay",
    "ExponentialRandomDelay",
    "FaultPlan",
    "NoFaults",
    "NetworkStats",
    "DeliveryRecord",
    "SimulatedNetwork",
]


# ----------------------------------------------------------------------
# Delay models
# ----------------------------------------------------------------------


class DelayModel(abc.ABC):
    """Strategy deciding the delivery delay of each message.

    The asynchronous model only requires that honest messages are *eventually*
    delivered; any finite positive delay is legal.  Delay models therefore
    return strictly positive floats and may use any information they like
    (sender, recipient, message contents, current time) to emulate an adaptive
    message-scheduling adversary.
    """

    #: Whether :meth:`delay` is a pure function of its arguments.  Stateless
    #: models may be probed in any order (and in bulk), which lets the
    #: round-level adapters (:class:`~repro.net.adversary.DelayRankOmission`)
    #: answer whole-round quorum queries for the vectorised batch engine.
    #: Defaults to ``False``; concrete pure models opt in.
    stateless: bool = False

    #: Whether the model shapes *which values* a witness-protocol process
    #: samples, or only *when* they arrive.  The witness wait makes a
    #: process's sample the set of reliably-delivered values at the moment
    #: the witness condition fires, a set that only grows — so a model that
    #: delays nothing the sample depends on (e.g. report-exchange timing
    #: only, :class:`~repro.net.adversary.PartitionReportDelay`) leaves the
    #: round-level witness form on its full-delivery schedule, which is
    #: exactly what the event simulator realises.  Defaults to ``True``
    #: (conservative: an arbitrary delay model may shape samples).
    shapes_witness_samples: bool = True

    @abc.abstractmethod
    def delay(self, sender: int, recipient: int, message: Message, now: float) -> float:
        """Return the delivery delay for this message (must be > 0)."""

    def tensor_key(self) -> Optional[tuple]:
        """Hashable fault-program identity of this model, or ``None``.

        Two models with equal keys realise the *same* delay program: any
        per-execution variation is carried entirely by the PRF seed
        (:meth:`tensor_seed`), so one representative instance may answer
        :meth:`delay_tensor` for a whole block of executions at once — this
        is what lets the vectorised engine (:mod:`repro.sim.ndbatch`) and the
        sweep grouper treat per-cell model instances as one program.
        Deterministic stateless models return a parameter tuple; stateful
        models return ``None`` (no tensor form).
        """
        return None

    def tensor_seed(self) -> int:
        """Per-execution pre-mixed PRF seed consumed by :meth:`delay_tensor`.

        Deterministic (seed-free) programs return 0; PRF-driven models (e.g.
        :class:`~repro.net.adversary.SeededDelay`) return their pre-mixed
        seed, the only thing that distinguishes two instances of one program.
        """
        return 0

    def delay_tensor(self, round_number: int, n: int, seed_mix):
        """Whole-block delay tensor ``delays[e, recipient, sender]``.

        ``seed_mix`` is a length-``E`` uint64 vector of per-execution
        pre-mixed seeds (:meth:`tensor_seed`); the result has shape
        ``(E, n, n)`` and every row must equal probing :meth:`delay` pair by
        pair, bit for bit.  The default implementation covers every
        deterministic program (non-``None`` :meth:`tensor_key`): the round's
        ``n × n`` matrix is probed *once* and broadcast across the block —
        seed-driven models override with a truly vectorised computation.
        Returns ``None`` when the model has no tensor form.  Requires numpy
        (only the vectorised engine calls it).
        """
        if self.tensor_key() is None:
            return None
        import numpy as np

        probe = Message(kind="VALUE", round=round_number, value=0.0)
        now = float(round_number)
        matrix = np.array(
            [
                [self.delay(sender, recipient, probe, now) for sender in range(n)]
                for recipient in range(n)
            ],
            dtype=np.float64,
        )
        return np.broadcast_to(matrix, (len(seed_mix), n, n))

    def reset(self) -> None:
        """Reset internal state before a fresh execution (optional)."""


class ConstantDelay(DelayModel):
    """Every message takes exactly ``delay`` time units to arrive."""

    stateless = True

    def __init__(self, delay: float = 1.0) -> None:
        if delay <= 0:
            raise ValueError("delay must be positive")
        self._delay = delay

    def delay(self, sender: int, recipient: int, message: Message, now: float) -> float:
        return self._delay

    def tensor_key(self) -> tuple:
        return ("constant", self._delay)


class UniformRandomDelay(DelayModel):
    """Delays drawn uniformly from ``[low, high]`` with a seeded RNG."""

    def __init__(self, low: float = 0.5, high: float = 1.5, seed: int = 0) -> None:
        if low <= 0 or high < low:
            raise ValueError("require 0 < low <= high")
        self._low = low
        self._high = high
        self._seed = seed
        self._rng = random.Random(seed)

    def delay(self, sender: int, recipient: int, message: Message, now: float) -> float:
        return self._rng.uniform(self._low, self._high)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


class ExponentialRandomDelay(DelayModel):
    """Exponentially distributed delays (heavy tail) with a floor.

    Models a congested asynchronous network where most messages are fast but a
    few straggle, which is the regime in which asynchronous algorithms differ
    most visibly from synchronous ones.
    """

    def __init__(self, mean: float = 1.0, floor: float = 0.05, seed: int = 0) -> None:
        if mean <= 0 or floor <= 0:
            raise ValueError("mean and floor must be positive")
        self._mean = mean
        self._floor = floor
        self._seed = seed
        self._rng = random.Random(seed)

    def delay(self, sender: int, recipient: int, message: Message, now: float) -> float:
        return self._floor + self._rng.expovariate(1.0 / self._mean)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------


class FaultPlan(abc.ABC):
    """Strategy describing which processes are faulty and how they misbehave.

    A fault plan is consulted by the network at three points:

    * at construction time, to learn which process identifiers are faulty and,
      for Byzantine faults, to *replace* the protocol object of a faulty
      process with an adversarial behaviour;
    * before every outgoing message of a crash-faulty process, to decide
      whether the process crashes at this point (allowing crashes in the
      middle of a multicast, which is the subtle case in the crash model);
    * at delivery time, to suppress deliveries to processes that have crashed.
    """

    @abc.abstractmethod
    def faulty_ids(self, n: int) -> Sequence[int]:
        """Return the identifiers of the faulty processes."""

    def byzantine_ids(self, n: int) -> Sequence[int]:
        """The subset of the faulty processes that is Byzantine.

        Crash-faulty processes are faulty but not Byzantine; the distinction
        matters for the validity reference (see :mod:`repro.core.problem`).
        The default — used by crash fault plans — is the empty set.
        """
        return ()

    def replacement_process(self, process_id: int, original: Process) -> Optional[Process]:
        """Return a Byzantine replacement for ``process_id`` or ``None``.

        Returning ``None`` keeps the original (used for crash faults, where
        the process follows the protocol until it stops).
        """
        return None

    def crashes_before_send(self, process_id: int, messages_sent: int, now: float) -> bool:
        """Whether ``process_id`` crashes before sending its next message.

        ``messages_sent`` counts every point-to-point message already sent by
        the process (a multicast counts as ``n`` point-to-point messages), so
        a plan can crash a process part-way through a multicast.
        """
        return False

    def describe(self) -> str:
        """Human-readable description used in experiment reports."""
        return type(self).__name__


class NoFaults(FaultPlan):
    """The trivial fault plan: every process is honest."""

    def faulty_ids(self, n: int) -> Sequence[int]:
        return ()


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------


@dataclass
class DeliveryRecord:
    """A single message delivery, as recorded in the (optional) trace."""

    time: float
    sender: int
    recipient: int
    message: Message


@dataclass
class NetworkStats:
    """Aggregate statistics of one execution, per the paper's cost measures."""

    messages_sent: int = 0
    messages_delivered: int = 0
    bits_sent: int = 0
    messages_by_kind: Dict[str, int] = field(default_factory=dict)
    sends_by_process: Dict[int, int] = field(default_factory=dict)

    def record_send(self, sender: int, message: Message) -> None:
        self.messages_sent += 1
        self.bits_sent += message_bits(message)
        self.messages_by_kind[message.kind] = self.messages_by_kind.get(message.kind, 0) + 1
        self.sends_by_process[sender] = self.sends_by_process.get(sender, 0) + 1

    def record_delivery(self) -> None:
        self.messages_delivered += 1


# ----------------------------------------------------------------------
# The network itself
# ----------------------------------------------------------------------


class _Context(ProcessContext):
    """Per-process view of the network, handed to protocol callbacks."""

    def __init__(self, network: "SimulatedNetwork", process_id: int) -> None:
        self._network = network
        self._process_id = process_id

    @property
    def process_id(self) -> int:
        return self._process_id

    @property
    def n(self) -> int:
        return self._network.n

    @property
    def time(self) -> float:
        return self._network.scheduler.now

    def send(self, recipient: int, message: Message) -> None:
        self._network._send(self._process_id, recipient, message)

    def multicast(self, message: Message) -> None:
        self._network._multicast(self._process_id, message)

    def output(self, value: Any) -> None:
        self._network._record_output(self._process_id, value)

    def halt(self) -> None:
        self._network._halt(self._process_id)


class SimulatedNetwork:
    """Deterministic simulation of an asynchronous message-passing system.

    Parameters
    ----------
    processes:
        The protocol state machine of each process, indexed by process id.
        Byzantine replacements from the fault plan are applied on top.
    delay_model:
        Delivery-delay policy (see :class:`DelayModel`).
    fault_plan:
        Fault injection policy (see :class:`FaultPlan`).
    keep_trace:
        When true, every delivery is appended to :attr:`trace` — useful for
        debugging and for the schedule-replay tests, but memory-hungry for
        large sweeps.
    """

    def __init__(
        self,
        processes: Sequence[Process],
        delay_model: Optional[DelayModel] = None,
        fault_plan: Optional[FaultPlan] = None,
        keep_trace: bool = False,
    ) -> None:
        self.scheduler = EventScheduler()
        self.delay_model = delay_model or ConstantDelay(1.0)
        self.delay_model.reset()
        self.fault_plan = fault_plan or NoFaults()
        self.stats = NetworkStats()
        self.trace: List[DeliveryRecord] = []
        self._keep_trace = keep_trace

        self.processes: List[Process] = []
        self.n = len(processes)
        self._faulty = set(self.fault_plan.faulty_ids(self.n))
        for pid, process in enumerate(processes):
            replacement = None
            if pid in self._faulty:
                replacement = self.fault_plan.replacement_process(pid, process)
            chosen = replacement if replacement is not None else process
            chosen.bind(pid)
            self.processes.append(chosen)

        self._contexts = [_Context(self, pid) for pid in range(self.n)]
        self._halted = [False] * self.n
        self._crashed = [False] * self.n
        self._started = [False] * self.n
        self._sends_by_process = [0] * self.n
        self._delivery_observers: List[Callable[[DeliveryRecord], None]] = []

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    @property
    def faulty(self) -> Sequence[int]:
        """Identifiers of the faulty processes."""
        return tuple(sorted(self._faulty))

    @property
    def honest(self) -> Sequence[int]:
        """Identifiers of the honest (never-faulty) processes."""
        return tuple(pid for pid in range(self.n) if pid not in self._faulty)

    def is_faulty(self, pid: int) -> bool:
        return pid in self._faulty

    def is_crashed(self, pid: int) -> bool:
        return self._crashed[pid]

    def add_delivery_observer(self, observer: Callable[[DeliveryRecord], None]) -> None:
        """Register a callback invoked on every delivery (metrics hooks)."""
        self._delivery_observers.append(observer)

    def start(self, start_jitter: float = 0.0, seed: int = 0) -> None:
        """Start every process (deliver its input by calling ``on_start``).

        ``start_jitter`` optionally staggers start times uniformly at random
        in ``[0, start_jitter]`` to model processes acquiring their inputs at
        different times, which the asynchronous model allows.
        """
        rng = random.Random(seed)
        for pid in range(self.n):
            delay = rng.uniform(0.0, start_jitter) if start_jitter > 0 else 0.0
            self.scheduler.schedule_at(delay, self._make_starter(pid), label=f"start:{pid}")

    def run(
        self,
        max_events: Optional[int] = None,
        stop_when_outputs: bool = True,
        extra_events_after_outputs: int = 0,
    ) -> int:
        """Run the simulation.

        By default the run stops as soon as every honest process has produced
        an output (plus ``extra_events_after_outputs`` additional events, used
        by tests that check post-decision behaviour), or when the event queue
        drains, whichever comes first.
        """
        if not stop_when_outputs:
            return self.scheduler.run(max_events=max_events)

        executed = self.scheduler.run(max_events=max_events, stop_when=self.all_honest_output)
        if extra_events_after_outputs > 0:
            executed += self.scheduler.run(max_events=extra_events_after_outputs)
        return executed

    def all_honest_output(self) -> bool:
        """Whether every honest process has recorded an output."""
        return all(
            self.processes[pid].has_output for pid in range(self.n) if pid not in self._faulty
        )

    def honest_outputs(self) -> List[Any]:
        """Outputs of the honest processes, in process-id order."""
        return [
            self.processes[pid].output_value
            for pid in range(self.n)
            if pid not in self._faulty and self.processes[pid].has_output
        ]

    def crash(self, pid: int) -> None:
        """Crash process ``pid`` immediately (used by crash fault plans)."""
        self._crashed[pid] = True
        self._halted[pid] = True

    def context_for(self, pid: int) -> ProcessContext:
        """The context of process ``pid`` (used by lockstep runners)."""
        return self._contexts[pid]

    def signal_round_timeout(self, round_number: int) -> None:
        """Tell every live process that synchronous round ``round_number`` ended.

        Only the lockstep runner for the synchronous baselines calls this;
        asynchronous executions never do (the model has no timeouts).
        """
        for pid in range(self.n):
            if self._halted[pid] or self._crashed[pid]:
                continue
            self.processes[pid].on_round_timeout(self._contexts[pid], round_number)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _make_starter(self, pid: int) -> Callable[[], None]:
        def starter() -> None:
            if self._crashed[pid] or self._started[pid]:
                return
            self._started[pid] = True
            self.processes[pid].on_start(self._contexts[pid])

        return starter

    def _send(self, sender: int, recipient: int, message: Message) -> None:
        if not 0 <= recipient < self.n:
            raise ValueError(f"invalid recipient {recipient}")
        if self._crashed[sender]:
            return
        if self.fault_plan.crashes_before_send(
            sender, self._sends_by_process[sender], self.scheduler.now
        ):
            self.crash(sender)
            return
        self._sends_by_process[sender] += 1
        self.stats.record_send(sender, message)
        delay = self.delay_model.delay(sender, recipient, message, self.scheduler.now)
        if delay <= 0:
            raise ValueError("delay models must return strictly positive delays")
        self.scheduler.schedule(
            delay,
            self._make_delivery(sender, recipient, message),
            label=f"{message.kind}:{sender}->{recipient}",
        )

    def _multicast(self, sender: int, message: Message) -> None:
        # A multicast is n point-to-point sends in increasing recipient order;
        # a crash fault plan may stop the sender part-way through, so that
        # only a prefix of the recipients ever receives the message.
        for recipient in range(self.n):
            if self._crashed[sender]:
                break
            self._send(sender, recipient, message)

    def _make_delivery(self, sender: int, recipient: int, message: Message) -> Callable[[], None]:
        def deliver() -> None:
            if self._halted[recipient] or self._crashed[recipient]:
                return
            self.stats.record_delivery()
            record = DeliveryRecord(
                time=self.scheduler.now, sender=sender, recipient=recipient, message=message
            )
            if self._keep_trace:
                self.trace.append(record)
            for observer in self._delivery_observers:
                observer(record)
            self.processes[recipient].on_message(self._contexts[recipient], sender, message)

        return deliver

    def _record_output(self, pid: int, value: Any) -> None:
        self.processes[pid].record_output(value)

    def _halt(self, pid: int) -> None:
        self._halted[pid] = True
