"""``asyncio``-based runtime for the same protocol objects.

The discrete-event simulator in :mod:`repro.net.network` is the workhorse of
the test-suite and the benchmarks, but the repro hint for this paper calls for
an ``asyncio`` realisation as well: each process becomes a coroutine with an
inbox queue, message delays become real ``await asyncio.sleep`` calls (scaled
down so tests stay fast), and the scheduler is Python's event loop instead of
our own heap.  Protocol objects are *identical* in both runtimes — they only
see :class:`~repro.net.interfaces.ProcessContext` — which the equivalence
tests and benchmark E8 exploit.

The runtime reuses :class:`~repro.net.network.DelayModel` and
:class:`~repro.net.network.FaultPlan`, so crash and Byzantine behaviours, and
even the adversarial delay policies, carry over unchanged.
"""

from __future__ import annotations

import asyncio
from typing import Any, List, Optional, Sequence

from repro.net.interfaces import Process, ProcessContext
from repro.net.message import Message
from repro.net.network import ConstantDelay, DelayModel, FaultPlan, NetworkStats, NoFaults

__all__ = ["AsyncioRuntime"]


class _AsyncioContext(ProcessContext):
    """Per-process context backed by the asyncio runtime."""

    def __init__(self, runtime: "AsyncioRuntime", process_id: int) -> None:
        self._runtime = runtime
        self._process_id = process_id

    @property
    def process_id(self) -> int:
        return self._process_id

    @property
    def n(self) -> int:
        return self._runtime.n

    @property
    def time(self) -> float:
        loop = asyncio.get_event_loop()
        return loop.time() - self._runtime.start_time

    def send(self, recipient: int, message: Message) -> None:
        self._runtime._send(self._process_id, recipient, message)

    def multicast(self, message: Message) -> None:
        for recipient in range(self._runtime.n):
            if self._runtime.is_crashed(self._process_id):
                break
            self._runtime._send(self._process_id, recipient, message)

    def output(self, value: Any) -> None:
        self._runtime.processes[self._process_id].record_output(value)
        self._runtime._maybe_finish()

    def halt(self) -> None:
        self._runtime._halt(self._process_id)


class AsyncioRuntime:
    """Run protocol processes as asyncio tasks with real (scaled) delays.

    Parameters
    ----------
    processes:
        Protocol objects, one per process id.
    delay_model:
        Same interface as the discrete-event simulator; the returned delay is
        multiplied by ``time_scale`` seconds before sleeping.
    fault_plan:
        Same interface as the discrete-event simulator.
    time_scale:
        Seconds of wall-clock time per simulated time unit.  The default of
        one millisecond keeps even multi-round executions well under a second
        for the system sizes the repro hint targets ("fine for small n").
    """

    def __init__(
        self,
        processes: Sequence[Process],
        delay_model: Optional[DelayModel] = None,
        fault_plan: Optional[FaultPlan] = None,
        time_scale: float = 0.001,
    ) -> None:
        self.n = len(processes)
        self.delay_model = delay_model or ConstantDelay(1.0)
        self.delay_model.reset()
        self.fault_plan = fault_plan or NoFaults()
        self.time_scale = time_scale
        self.stats = NetworkStats()
        self.start_time = 0.0

        self._faulty = set(self.fault_plan.faulty_ids(self.n))
        self.processes: List[Process] = []
        for pid, process in enumerate(processes):
            replacement = None
            if pid in self._faulty:
                replacement = self.fault_plan.replacement_process(pid, process)
            chosen = replacement if replacement is not None else process
            chosen.bind(pid)
            self.processes.append(chosen)

        self._contexts = [_AsyncioContext(self, pid) for pid in range(self.n)]
        self._inboxes: List[asyncio.Queue] = []
        self._halted = [False] * self.n
        self._crashed = [False] * self.n
        self._sends_by_process = [0] * self.n
        self._pending_deliveries = 0
        self._done_event: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    @property
    def honest(self) -> Sequence[int]:
        return tuple(pid for pid in range(self.n) if pid not in self._faulty)

    def is_crashed(self, pid: int) -> bool:
        return self._crashed[pid]

    def honest_outputs(self) -> List[Any]:
        return [
            self.processes[pid].output_value
            for pid in self.honest
            if self.processes[pid].has_output
        ]

    def all_honest_output(self) -> bool:
        return all(self.processes[pid].has_output for pid in self.honest)

    def run(self, timeout: float = 30.0) -> List[Any]:
        """Run the system until every honest process outputs (or timeout).

        Returns the honest outputs in process-id order.  This is a blocking
        convenience wrapper around :meth:`run_async` for callers that are not
        themselves inside an event loop.
        """
        return asyncio.run(self.run_async(timeout=timeout))

    async def run_async(self, timeout: float = 30.0) -> List[Any]:
        loop = asyncio.get_event_loop()
        self.start_time = loop.time()
        self._done_event = asyncio.Event()
        self._inboxes = [asyncio.Queue() for _ in range(self.n)]

        consumer_tasks = [
            asyncio.create_task(self._process_main(pid)) for pid in range(self.n)
        ]
        try:
            await asyncio.wait_for(self._done_event.wait(), timeout=timeout)
        except asyncio.TimeoutError:
            pass
        finally:
            for task in consumer_tasks:
                task.cancel()
            await asyncio.gather(*consumer_tasks, return_exceptions=True)
        return self.honest_outputs()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    async def _process_main(self, pid: int) -> None:
        if not self._crashed[pid]:
            self.processes[pid].on_start(self._contexts[pid])
            self._maybe_finish()
        inbox = self._inboxes[pid]
        while True:
            sender, message = await inbox.get()
            if self._halted[pid] or self._crashed[pid]:
                continue
            self.processes[pid].on_message(self._contexts[pid], sender, message)
            self._maybe_finish()

    def _send(self, sender: int, recipient: int, message: Message) -> None:
        if self._crashed[sender]:
            return
        if self.fault_plan.crashes_before_send(sender, self._sends_by_process[sender], 0.0):
            self._crashed[sender] = True
            self._halted[sender] = True
            return
        self._sends_by_process[sender] += 1
        self.stats.record_send(sender, message)
        delay = self.delay_model.delay(sender, recipient, message, 0.0) * self.time_scale
        asyncio.get_event_loop().create_task(self._deliver_later(sender, recipient, message, delay))

    async def _deliver_later(
        self, sender: int, recipient: int, message: Message, delay: float
    ) -> None:
        await asyncio.sleep(delay)
        if self._halted[recipient] or self._crashed[recipient]:
            return
        self.stats.record_delivery()
        await self._inboxes[recipient].put((sender, message))

    def _halt(self, pid: int) -> None:
        self._halted[pid] = True

    def _maybe_finish(self) -> None:
        if self._done_event is not None and self.all_honest_output():
            self._done_event.set()
