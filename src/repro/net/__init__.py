"""Network substrate: messages, runtimes, adversaries, reliable broadcast.

The :mod:`repro.net` package simulates the execution environment the paper
assumes — an asynchronous, fully connected, reliable, authenticated
message-passing system with up to ``t`` faulty processes — and provides the
adversarial machinery (fault plans, Byzantine behaviours, scheduling policies)
needed to exercise the worst cases of the convergence analysis.
"""

from repro.net.adversary import (
    AntiConvergenceStrategy,
    ByzantineFaultPlan,
    ComposedFaultPlan,
    CrashFaultPlan,
    CrashPoint,
    EquivocatingStrategy,
    FixedValueStrategy,
    HonestWithCorruptedInput,
    LaggardDelay,
    PartitionDelay,
    RandomValueStrategy,
    RoundEchoByzantine,
    SilentProcess,
    StaggeredExclusionDelay,
    TargetedDelay,
)
from repro.net.asyncio_runtime import AsyncioRuntime
from repro.net.interfaces import Process, ProcessContext
from repro.net.message import Message, message_bits
from repro.net.network import (
    ConstantDelay,
    DelayModel,
    ExponentialRandomDelay,
    FaultPlan,
    NetworkStats,
    NoFaults,
    SimulatedNetwork,
    UniformRandomDelay,
)
from repro.net.rbc import BrachaInstance, RbcMultiplexer
from repro.net.scheduler import EventScheduler

__all__ = [
    "AntiConvergenceStrategy",
    "AsyncioRuntime",
    "BrachaInstance",
    "ByzantineFaultPlan",
    "ComposedFaultPlan",
    "ConstantDelay",
    "CrashFaultPlan",
    "CrashPoint",
    "DelayModel",
    "EquivocatingStrategy",
    "EventScheduler",
    "ExponentialRandomDelay",
    "FaultPlan",
    "FixedValueStrategy",
    "HonestWithCorruptedInput",
    "LaggardDelay",
    "Message",
    "message_bits",
    "NetworkStats",
    "NoFaults",
    "PartitionDelay",
    "Process",
    "ProcessContext",
    "RandomValueStrategy",
    "RbcMultiplexer",
    "RoundEchoByzantine",
    "SilentProcess",
    "SimulatedNetwork",
    "StaggeredExclusionDelay",
    "TargetedDelay",
    "UniformRandomDelay",
]
