"""Message types exchanged by approximate-agreement protocols.

The paper's model is a fully connected asynchronous network of ``n`` processes
communicating over reliable, authenticated point-to-point channels.  Messages
carry a *kind* (protocol-level opcode), an optional *round* tag (the
asynchronous round the message belongs to), an optional *value* (a real number
or a small structured payload), and an optional *tag* used to separate
sub-protocol instances (e.g. one reliable-broadcast instance per sender per
round in the witness protocol).

All messages are immutable.  Equality and hashing are value-based so that
protocol logic and tests can compare messages directly.

The module also provides :func:`message_bits`, a deterministic estimate of the
wire size of a message, used by the evaluation harness to reproduce the
communication-complexity experiments (bits sent per round / per execution).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

__all__ = ["Message", "message_bits", "KIND_BITS", "FLOAT_BITS"]


#: Number of bits charged for the message kind (opcode) field.
KIND_BITS = 8

#: Number of bits charged for a real-valued payload (IEEE-754 double).
FLOAT_BITS = 64


@dataclass(frozen=True)
class Message:
    """A single protocol message.

    Parameters
    ----------
    kind:
        Protocol-level opcode, e.g. ``"VALUE"``, ``"HALT"``, ``"RBC_ECHO"``.
    round:
        Asynchronous round number the message belongs to, or ``None`` for
        round-less messages (e.g. termination echoes).
    value:
        Payload.  Usually a float (the sender's current approximation), but
        sub-protocols may carry tuples (e.g. witness reports carry a tuple of
        ``(sender, value)`` pairs).
    tag:
        Optional sub-protocol instance tag.  The witness-technique protocol
        tags each reliable-broadcast instance with ``(iteration, originator)``.
    """

    kind: str
    round: Optional[int] = None
    value: Any = None
    tag: Any = None

    def with_round(self, round_number: int) -> "Message":
        """Return a copy of this message tagged with ``round_number``."""
        return Message(kind=self.kind, round=round_number, value=self.value, tag=self.tag)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.kind]
        if self.round is not None:
            parts.append(f"r={self.round}")
        if self.value is not None:
            parts.append(f"v={self.value!r}")
        if self.tag is not None:
            parts.append(f"tag={self.tag!r}")
        return "Message(" + ", ".join(parts) + ")"


def _payload_bits(value: Any) -> int:
    """Estimate the number of bits needed to encode ``value``.

    The estimate follows the conventions of the communication-complexity
    analyses in the approximate-agreement literature: reals are charged a full
    machine word, integers are charged their binary length, and containers are
    charged the sum of their elements plus a small per-element framing cost.
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        magnitude = abs(value)
        return max(1, magnitude.bit_length()) + 1  # sign bit
    if isinstance(value, float):
        return FLOAT_BITS
    if isinstance(value, str):
        return 8 * len(value)
    if isinstance(value, (tuple, list, frozenset, set)):
        return sum(_payload_bits(item) + 2 for item in value)
    if isinstance(value, dict):
        return sum(_payload_bits(k) + _payload_bits(v) + 2 for k, v in value.items())
    # Fallback: charge a machine word for unknown payloads.
    return FLOAT_BITS


def message_bits(message: Message) -> int:
    """Return a deterministic estimate of the wire size of ``message`` in bits.

    The estimate includes the opcode, the round tag (``ceil(log2(round + 2))``
    bits, matching the "iteration ID tag" accounting used in the literature),
    the sub-protocol tag, and the payload.
    """
    bits = KIND_BITS
    if message.round is not None:
        bits += max(1, math.ceil(math.log2(message.round + 2)))
    bits += _payload_bits(message.tag)
    bits += _payload_bits(message.value)
    return bits
