"""Bracha reliable broadcast.

The witness-technique protocol (the optimal-resilience ``t < n/3``
asynchronous Byzantine approximate-agreement algorithm that followed the
paper) requires each process to *reliably broadcast* its value every
iteration, so that Byzantine processes cannot equivocate.  This module
implements Bracha's classic asynchronous reliable broadcast, which provides,
for ``n > 3t``:

* **validity** — if the (honest) designated sender broadcasts ``v``, every
  honest process eventually delivers ``v``;
* **consistency** — no two honest processes deliver different values for the
  same broadcast instance;
* **totality** — if any honest process delivers a value, every honest process
  eventually delivers it.

Each broadcast instance costs ``Θ(n²)`` messages, which is exactly why the
witness-technique protocol costs ``Θ(n³)`` messages per iteration — the
communication-complexity comparison reproduced in benchmark E5.

The implementation is a *helper*, not a standalone process: a host protocol
(see :class:`repro.core.witness.WitnessProcess`) owns an
:class:`RbcMultiplexer`, forwards every ``RBC_*`` message to it, and receives
deliveries through a callback.  Instances are identified by a ``tag`` — in the
witness protocol the tag is ``(iteration, originator)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.net.interfaces import ProcessContext
from repro.net.message import Message

__all__ = ["RBC_KINDS", "BrachaInstance", "RbcMultiplexer", "echo_quorum"]


#: Message kinds used by the broadcast (INIT from the sender, ECHO and READY
#: from everybody).
RBC_KINDS = ("RBC_INIT", "RBC_ECHO", "RBC_READY")


def echo_quorum(n: int, t: int) -> int:
    """Size of the echo quorum: strictly more than ``(n + t) / 2`` parties."""
    return (n + t) // 2 + 1


#: Backwards-compatible alias (the quorum size is part of the public contract
#: now that the round-level witness engine reproduces the broadcast's traffic).
_echo_quorum = echo_quorum


@dataclass
class BrachaInstance:
    """State of a single reliable-broadcast instance.

    Parameters
    ----------
    n, t:
        System size and fault threshold (requires ``n > 3t``).
    tag:
        Instance identifier carried on every message of this instance.
    originator:
        The process whose broadcast this instance carries; only ``RBC_INIT``
        messages from this process are accepted (channels are authenticated).
    """

    n: int
    t: int
    tag: Any
    originator: int

    _echoed: bool = field(default=False, init=False)
    _readied: bool = field(default=False, init=False)
    _delivered: bool = field(default=False, init=False)
    _echoes: Dict[Any, Set[int]] = field(default_factory=dict, init=False)
    _readies: Dict[Any, Set[int]] = field(default_factory=dict, init=False)

    @property
    def delivered(self) -> bool:
        return self._delivered

    def broadcast(self, ctx: ProcessContext, value: Any) -> None:
        """Start the broadcast (to be called only by the originator)."""
        if ctx.process_id != self.originator:
            raise ValueError("only the originator may start its broadcast")
        ctx.multicast(Message(kind="RBC_INIT", value=value, tag=self.tag))

    def handle(
        self, ctx: ProcessContext, sender: int, message: Message
    ) -> Optional[Any]:
        """Process an ``RBC_*`` message for this instance.

        Returns the delivered value the first time the delivery condition is
        met, ``None`` otherwise.
        """
        if message.kind == "RBC_INIT":
            if sender != self.originator:
                return None  # forged INIT; authenticated channels expose the true sender
            self._send_echo(ctx, message.value)
            return None

        if message.kind == "RBC_ECHO":
            voters = self._echoes.setdefault(message.value, set())
            voters.add(sender)
            if len(voters) >= _echo_quorum(self.n, self.t):
                self._send_ready(ctx, message.value)
            return None

        if message.kind == "RBC_READY":
            voters = self._readies.setdefault(message.value, set())
            voters.add(sender)
            if len(voters) >= self.t + 1:
                self._send_ready(ctx, message.value)
            if len(voters) >= 2 * self.t + 1 and not self._delivered:
                self._delivered = True
                return message.value
            return None

        return None

    def _send_echo(self, ctx: ProcessContext, value: Any) -> None:
        if not self._echoed:
            self._echoed = True
            ctx.multicast(Message(kind="RBC_ECHO", value=value, tag=self.tag))

    def _send_ready(self, ctx: ProcessContext, value: Any) -> None:
        if not self._readied:
            self._readied = True
            ctx.multicast(Message(kind="RBC_READY", value=value, tag=self.tag))


class RbcMultiplexer:
    """Manages many concurrent :class:`BrachaInstance` objects keyed by tag.

    The host protocol calls :meth:`broadcast` to start its own broadcasts,
    forwards every message whose kind is in :data:`RBC_KINDS` to
    :meth:`handle`, and receives ``(tag, originator, value)`` deliveries
    through the callback supplied at construction.

    Tags are expected to be ``(context, originator)`` tuples whose second
    component identifies the designated sender; this lets the multiplexer
    create instances lazily when the first message of an unknown instance
    arrives, without any out-of-band setup.
    """

    def __init__(
        self,
        n: int,
        t: int,
        on_deliver: Callable[[Any, int, Any], None],
    ) -> None:
        if n <= 3 * t:
            raise ValueError(f"Bracha broadcast requires n > 3t (got n={n}, t={t})")
        self.n = n
        self.t = t
        self._on_deliver = on_deliver
        self._instances: Dict[Any, BrachaInstance] = {}

    def _instance(self, tag: Any) -> BrachaInstance:
        if tag not in self._instances:
            originator = self._originator_of(tag)
            self._instances[tag] = BrachaInstance(
                n=self.n, t=self.t, tag=tag, originator=originator
            )
        return self._instances[tag]

    @staticmethod
    def _originator_of(tag: Any) -> int:
        if isinstance(tag, tuple) and len(tag) >= 2 and isinstance(tag[-1], int):
            return tag[-1]
        raise ValueError(
            "RBC tags must be tuples whose last component is the originator process id"
        )

    def broadcast(self, ctx: ProcessContext, context_tag: Any, value: Any) -> None:
        """Reliably broadcast ``value`` under ``(context_tag, own id)``."""
        tag = (context_tag, ctx.process_id)
        self._instance(tag).broadcast(ctx, value)

    def handles(self, message: Message) -> bool:
        """Whether ``message`` belongs to the reliable-broadcast layer."""
        return message.kind in RBC_KINDS

    def handle(self, ctx: ProcessContext, sender: int, message: Message) -> None:
        """Route a broadcast-layer message to its instance; fire deliveries."""
        instance = self._instance(message.tag)
        delivered = instance.handle(ctx, sender, message)
        if delivered is not None:
            context_tag, originator = message.tag
            self._on_deliver(context_tag, originator, delivered)

    @property
    def instance_count(self) -> int:
        """Number of instances created so far (for tests and metrics)."""
        return len(self._instances)
