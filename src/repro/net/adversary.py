"""Fault and scheduling adversaries.

The power of the adversary in the paper is threefold: it picks which ``t``
processes are faulty (adaptively, but for a simulation a pre-committed choice
exercises the same code paths), it controls what Byzantine processes send, and
it schedules message deliveries arbitrarily.  This module provides concrete,
composable realisations of all three powers:

* **Crash fault plans** — a faulty process follows the protocol and then stops
  forever, possibly in the middle of a multicast so that only some recipients
  receive its last message.  This partial-multicast behaviour is exactly the
  subtlety that separates the crash model from simple "slow process" behaviour.
* **Byzantine behaviours** — replacement :class:`~repro.net.interfaces.Process`
  objects that send arbitrary, possibly equivocating values.  Several
  strategies are provided, from silent processes to an adaptive
  anti-convergence strategy that always reports values at the far end of the
  honest range.
* **Adversarial delay models** — scheduling policies that maximise the
  divergence between the value multisets collected by different honest
  processes (the quantity the convergence analysis bounds), such as a network
  partitioned into two halves with slow cross-traffic.

All randomised components take explicit seeds; there is no hidden global RNG.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.net.interfaces import Process, ProcessContext
from repro.net.message import Message
from repro.net.network import DelayModel, FaultPlan, NoFaults

__all__ = [
    "CrashPoint",
    "CrashFaultPlan",
    "ByzantineFaultPlan",
    "ComposedFaultPlan",
    "SilentProcess",
    "ByzantineValueStrategy",
    "FixedValueStrategy",
    "EquivocatingStrategy",
    "RandomValueStrategy",
    "AntiConvergenceStrategy",
    "RoundEchoByzantine",
    "HonestWithCorruptedInput",
    "PartitionDelay",
    "PartitionReportDelay",
    "LaggardDelay",
    "StaggeredExclusionDelay",
    "TargetedDelay",
    "OmissionPolicy",
    "SeededOmission",
    "DelayRankOmission",
    "RoundFaultModel",
    "round_fault_model",
    "mix64",
    "seeded_rank_key",
    "SeededDelay",
    "SENDER_BITS",
    "SENDER_MASK",
    "MASK64",
    "MIX64_MULT1",
    "MIX64_MULT2",
    "KEY_ROUND",
    "KEY_RECIPIENT",
    "KEY_SENDER",
    "VALUE_STREAM",
    "DELAY_STREAM",
]


# ----------------------------------------------------------------------
# Crash faults
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CrashPoint:
    """Describes when a crash-faulty process stops.

    ``after_sends`` is the number of point-to-point messages the process is
    allowed to send before it crashes; a multicast counts as ``n`` sends in
    increasing recipient order, so crashes in the middle of a multicast are
    expressed naturally.  ``after_sends=0`` means the process crashes before
    sending anything (it is initially dead).  ``None`` means the process
    never crashes (useful when composing plans).
    """

    after_sends: Optional[int] = None

    @staticmethod
    def before_round(round_number: int, n: int) -> "CrashPoint":
        """Crash just before the process multicasts its round ``round_number`` value.

        Rounds are 1-based and each round of the direct protocols is a single
        multicast of ``n`` point-to-point messages.
        """
        return CrashPoint(after_sends=(round_number - 1) * n)

    @staticmethod
    def mid_multicast(round_number: int, n: int, deliveries: int) -> "CrashPoint":
        """Crash during the round ``round_number`` multicast after ``deliveries`` sends."""
        if not 0 <= deliveries <= n:
            raise ValueError("deliveries must be between 0 and n")
        return CrashPoint(after_sends=(round_number - 1) * n + deliveries)


class CrashFaultPlan(FaultPlan):
    """Crash the given processes at the given points.

    Parameters
    ----------
    crash_points:
        Mapping from process id to :class:`CrashPoint`.
    """

    def __init__(self, crash_points: Dict[int, CrashPoint]) -> None:
        self._crash_points = dict(crash_points)

    @property
    def crash_points(self) -> Dict[int, CrashPoint]:
        """The configured crash points (used by the round-level adapter)."""
        return dict(self._crash_points)

    def faulty_ids(self, n: int) -> Sequence[int]:
        return tuple(sorted(pid for pid in self._crash_points if pid < n))

    def crashes_before_send(self, process_id: int, messages_sent: int, now: float) -> bool:
        point = self._crash_points.get(process_id)
        if point is None or point.after_sends is None:
            return False
        return messages_sent >= point.after_sends

    def describe(self) -> str:
        points = ", ".join(
            f"P{pid}@{cp.after_sends}" for pid, cp in sorted(self._crash_points.items())
        )
        return f"CrashFaultPlan({points})"


# ----------------------------------------------------------------------
# Byzantine behaviours
# ----------------------------------------------------------------------


class SilentProcess(Process):
    """A Byzantine process that never sends anything (a de-facto crash)."""

    def on_start(self, ctx: ProcessContext) -> None:
        return None

    def on_message(self, ctx: ProcessContext, sender: int, message: Message) -> None:
        return None


class ByzantineValueStrategy(abc.ABC):
    """Strategy choosing the value a Byzantine process reports.

    The strategy is consulted once per (round, recipient) pair, so it can
    equivocate — report different values to different recipients in the same
    round — which is the capability that forces the double-sided ``reduce`` in
    the Byzantine algorithms.
    """

    #: Whether :meth:`value` is a pure function of its arguments (no internal
    #: state evolving between calls).  Stateless strategies may be queried in
    #: any order — and eagerly, for every (sender, recipient) pair at once —
    #: which is what the vectorised batch engine (:mod:`repro.sim.ndbatch`)
    #: requires.  Defaults to ``False``; concrete pure strategies opt in.
    stateless: bool = False

    @abc.abstractmethod
    def value(self, round_number: int, recipient: int, observed: Sequence[float]) -> float:
        """Value to report to ``recipient`` in ``round_number``.

        ``observed`` is the list of honest values the Byzantine process has
        seen so far (the adversary is full-information).
        """

    def tensor_key(self) -> Optional[tuple]:
        """Hashable fault-program identity of this strategy, or ``None``.

        Two strategies with equal keys realise the *same* injection program:
        any per-execution variation is carried entirely by the PRF seed
        (:meth:`tensor_seed`), so one representative instance may answer
        :meth:`value_tensor` for a whole block of executions at once.  This
        is the grouping key of the vectorised engine
        (:mod:`repro.sim.ndbatch`) and the sweep's block grouper: cells whose
        strategies share a program advance with *one* Python call per round,
        not one per execution.  ``None`` (the default) means the strategy has
        no tensor form; stateless strategies then fall back to per-execution
        :meth:`value_block` / :meth:`value` calls.
        """
        return None

    def tensor_seed(self) -> int:
        """Per-execution pre-mixed PRF seed consumed by :meth:`value_tensor`."""
        return 0

    def value_tensor(self, round_number: int, n: int, observed, seed_mix):
        """Whole-block form of :meth:`value`: ``reports[e, recipient]``.

        ``observed`` is an ``(E, k)`` float64 array of the values each
        execution's adversary has observed, padded with NaN (the vectorised
        engine passes the holder-value rows of the block, NaN at non-holder
        slots); ``seed_mix`` is a length-``E`` uint64 vector of per-execution
        pre-mixed seeds (:meth:`tensor_seed`).  Returns an ``(E, n)`` array
        whose row ``e`` equals ``[value(round, 0, observed_e), …]`` bit for
        bit, where ``observed_e`` is row ``e``'s non-NaN values — non-finite
        reports degrade to omissions at the engine boundary.  Strategies with
        a non-``None`` :meth:`tensor_key` must answer; others return
        ``None``.  Requires numpy (only bulk callers use it).
        """
        return None

    def value_block(
        self, round_number: int, n: int, observed: Sequence[float]
    ) -> Optional[Sequence[float]]:
        """Vector-friendly form of :meth:`value` for one whole round.

        Returns the length-``n`` sequence ``[value(round, 0, observed), …,
        value(round, n − 1, observed)]`` — one bulk query answering every
        recipient of the round.  Since the tensor refactor this is *derived*
        from :meth:`value_tensor`: a one-execution block is evaluated and its
        only row sliced out, so the scalar engines and the vectorised engine
        share a single implementation and the draws stay bit-identical by
        construction (on interpreters without numpy, stateless strategies
        fall back to per-recipient :meth:`value` calls — the same pure
        function).  Strategies with no tensor form return ``None``; the
        engines then fall back to per-recipient :meth:`value` calls (possible
        only for ``stateless`` strategies).
        """
        if self.tensor_key() is None:
            return None
        try:
            import numpy as np
        except ImportError:
            # Tensor-programmed strategies are pure functions; the scalar
            # path evaluates the same function per recipient.
            return [self.value(round_number, q, observed) for q in range(n)]
        if len(observed):
            observed_row = np.asarray(list(observed), dtype=np.float64).reshape(1, -1)
        else:
            observed_row = np.full((1, 1), np.nan)
        seeds = np.asarray([self.tensor_seed()], dtype=np.uint64)
        reports = self.value_tensor(round_number, n, observed_row, seeds)
        if reports is None:
            return None
        return np.asarray(reports, dtype=np.float64)[0]

    def describe(self) -> str:
        return type(self).__name__


class FixedValueStrategy(ByzantineValueStrategy):
    """Always report the same constant value (e.g. an enormous outlier)."""

    stateless = True

    def __init__(self, reported_value: float) -> None:
        self.reported_value = float(reported_value)

    def value(self, round_number: int, recipient: int, observed: Sequence[float]) -> float:
        return self.reported_value

    def tensor_key(self) -> tuple:
        return ("fixed", self.reported_value)

    def value_tensor(self, round_number: int, n: int, observed, seed_mix):
        from repro.core.backend import array_namespace

        xp = array_namespace(seed_mix)
        return xp.broadcast_to(xp.float64(self.reported_value), (len(seed_mix), n))

    def describe(self) -> str:
        return f"FixedValueStrategy({self.reported_value})"


class EquivocatingStrategy(ByzantineValueStrategy):
    """Report ``low`` to one half of the recipients and ``high`` to the other.

    This is the canonical equivocation attack: it tries to pull different
    honest processes toward opposite ends of the value range, and it is the
    reason the asynchronous Byzantine algorithm needs ``n > 5t`` without the
    witness technique.
    """

    stateless = True

    def __init__(self, low: float, high: float) -> None:
        self.low = float(low)
        self.high = float(high)

    def value(self, round_number: int, recipient: int, observed: Sequence[float]) -> float:
        return self.low if recipient % 2 == 0 else self.high

    def tensor_key(self) -> tuple:
        return ("equivocate", self.low, self.high)

    def value_tensor(self, round_number: int, n: int, observed, seed_mix):
        from repro.core.backend import array_namespace

        xp = array_namespace(seed_mix)
        row = xp.where(xp.arange(n) % 2 == 0, self.low, self.high)
        return xp.broadcast_to(row, (len(seed_mix), n))

    def describe(self) -> str:
        return f"EquivocatingStrategy({self.low}, {self.high})"


class RandomValueStrategy(ByzantineValueStrategy):
    """Report pseudo-random, per-(round, recipient) values in ``[low, high]``.

    The draws come from a counter-based PRF — the same MurmurHash3-finalizer
    key schedule as :class:`SeededOmission`, on a decorrelated stream
    (:data:`VALUE_STREAM`) — rather than a sequential RNG: every
    ``(round, recipient)`` pair maps to one 64-bit mix whose top-down scaling
    into ``[low, high]`` is a pure function of the seed.  That makes the
    strategy ``stateless`` (query order cannot change the draws), so the
    vectorised batch engine (:mod:`repro.sim.ndbatch`) can evaluate whole
    rounds at once (:meth:`value_block`) with draws bit-identical to the
    scalar path — the equivocation pattern every engine observes is the same.
    """

    stateless = True

    def __init__(self, low: float, high: float, seed: int = 0) -> None:
        self.low = float(low)
        self.high = float(high)
        self.seed = int(seed)
        self._seed_mix = mix64(self.seed ^ VALUE_STREAM)

    def _unit(self, round_number: int, recipient: int) -> float:
        key = mix64(
            self._seed_mix ^ (round_number * KEY_ROUND) ^ (recipient * KEY_RECIPIENT)
        )
        return key * 2.0**-64

    def value(self, round_number: int, recipient: int, observed: Sequence[float]) -> float:
        return self.low + (self.high - self.low) * self._unit(round_number, recipient)

    def tensor_key(self) -> tuple:
        return ("random", self.low, self.high)

    def tensor_seed(self) -> int:
        return self._seed_mix

    def value_tensor(self, round_number: int, n: int, observed, seed_mix):
        from repro.core.backend import array_namespace

        xp = array_namespace(seed_mix, observed)
        xp.require_uint64("RandomValueStrategy's counter-based PRF draws")
        recipients = xp.arange(n, dtype=xp.uint64) * xp.uint64(KEY_RECIPIENT)
        keys = _np_mix64(
            xp.asarray(seed_mix, dtype=xp.uint64)[:, None]
            ^ xp.uint64((round_number * KEY_ROUND) & MASK64)
            ^ recipients[None, :]
        )
        # uint64 → float64 rounds to nearest, exactly like Python's float(int),
        # and the scaling applies operations in the scalar path's order, so the
        # draws are bit-identical across the scalar and numpy paths.
        return self.low + (self.high - self.low) * (keys.astype(xp.float64) * 2.0**-64)

    def describe(self) -> str:
        return f"RandomValueStrategy([{self.low}, {self.high}], seed={self.seed})"


class AntiConvergenceStrategy(ByzantineValueStrategy):
    """Adaptively report values at the far ends of the observed honest range.

    The strategy keeps track of the smallest and largest honest values it has
    seen and reports the minimum to recipients with even identifiers and the
    maximum to recipients with odd identifiers, optionally stretched by
    ``stretch`` beyond the observed range.  Because the reported values stay
    close to (or just outside) the honest range, the ``reduce`` step cannot
    always discard them, making this the strongest convergence-slowing
    strategy among the ones shipped with the library (exercised by the
    adversary-ablation benchmark).

    ``parity`` flips which recipient class receives the low end: recipient
    ``q`` gets the minimum when ``(q + parity) % 2 == 0``.  The default
    ``parity=0`` is the historic behaviour bit for bit; the knob exists so
    the attack-search families (:mod:`repro.analysis.attacksearch`) can
    explore both phase assignments of the split as one searchable program
    axis.
    """

    stateless = True

    def __init__(self, stretch: float = 0.0, parity: int = 0) -> None:
        if parity not in (0, 1):
            raise ValueError("parity must be 0 or 1")
        self.stretch = float(stretch)
        self.parity = int(parity)

    def value(self, round_number: int, recipient: int, observed: Sequence[float]) -> float:
        if not observed:
            return 0.0
        low = min(observed) - self.stretch
        high = max(observed) + self.stretch
        return low if (recipient + self.parity) % 2 == 0 else high

    def tensor_key(self) -> tuple:
        return ("anti-convergence", self.stretch, self.parity)

    def value_tensor(self, round_number: int, n: int, observed, seed_mix):
        from repro.core.backend import array_namespace

        xp = array_namespace(observed, seed_mix)
        count = len(seed_mix)
        obs = xp.asarray(observed, dtype=xp.float64)
        if obs.ndim != 2 or obs.shape[1] == 0:
            return xp.zeros((count, n))
        # Observed values are finite by invariant, so masked min/max over an
        # inf fill equals Python's min()/max() over the non-NaN entries bit
        # for bit; all-NaN rows (nothing observed) report 0.0 like the
        # scalar path.
        valid = ~xp.isnan(obs)
        low = xp.where(valid, obs, xp.inf).min(axis=1)
        high = xp.where(valid, obs, -xp.inf).max(axis=1)
        has_observed = xp.isfinite(low)
        low = xp.where(has_observed, low - self.stretch, 0.0)
        high = xp.where(has_observed, high + self.stretch, 0.0)
        even = (xp.arange(n) + self.parity) % 2 == 0
        return xp.where(even[None, :], low[:, None], high[:, None])

    def describe(self) -> str:
        return f"AntiConvergenceStrategy(stretch={self.stretch}, parity={self.parity})"


class RoundEchoByzantine(Process):
    """Byzantine behaviour for round-structured protocols.

    The behaviour watches the honest traffic to learn which round is current
    and, for every round it observes, sends each recipient an adversarially
    chosen value (per :class:`ByzantineValueStrategy`).  It never crashes and
    never stops, so it participates in every quorum an honest process might
    wait for, which is the worst case for convergence (a silent Byzantine
    process is no stronger than a crash).

    ``value_kinds`` lists the message kinds that carry per-round values in the
    protocol under attack; the default covers the direct protocols
    (``"VALUE"``) and the witness protocol's reliable-broadcast initiation
    (``"RBC_INIT"``).
    """

    def __init__(
        self,
        strategy: ByzantineValueStrategy,
        value_kinds: Sequence[str] = ("VALUE",),
        max_round: int = 10_000,
    ) -> None:
        self.strategy = strategy
        self.value_kinds = tuple(value_kinds)
        self.max_round = max_round
        self._rounds_done: Set[int] = set()
        self._observed: List[float] = []

    def on_start(self, ctx: ProcessContext) -> None:
        self._attack_round(ctx, 1)

    def on_message(self, ctx: ProcessContext, sender: int, message: Message) -> None:
        if message.kind in self.value_kinds and isinstance(message.value, (int, float)):
            self._observed.append(float(message.value))
        if message.round is not None and message.kind in self.value_kinds:
            self._attack_round(ctx, message.round)

    def _attack_round(self, ctx: ProcessContext, round_number: int) -> None:
        if round_number in self._rounds_done or round_number > self.max_round:
            return
        self._rounds_done.add(round_number)
        for recipient in range(ctx.n):
            reported = self.strategy.value(round_number, recipient, self._observed)
            for kind in self.value_kinds:
                ctx.send(recipient, Message(kind=kind, round=round_number, value=reported))

    def describe(self) -> str:
        return f"RoundEchoByzantine({self.strategy.describe()})"


class HonestWithCorruptedInput(Process):
    """A Byzantine process that runs the honest protocol with a forged input.

    This is the mildest Byzantine behaviour — protocol-compliant but with an
    input far outside the honest range — and it is the sharpest test of the
    validity property: the honest outputs must stay inside the *honest* input
    range no matter how extreme the forged input is.  Because it follows the
    protocol, it works against every protocol in the library, including the
    witness-technique protocol whose reliable-broadcast sub-structure a
    generic equivocator does not speak.
    """

    def __init__(self, process_factory: Callable[[], Process]) -> None:
        self._inner = process_factory()

    @property
    def inner(self) -> Process:
        """The wrapped honest process (used by the round-level adapter)."""
        return self._inner

    def bind(self, process_id: int) -> Process:
        super().bind(process_id)
        self._inner.bind(process_id)
        return self

    def on_start(self, ctx: ProcessContext) -> None:
        self._inner.on_start(ctx)

    def on_message(self, ctx: ProcessContext, sender: int, message: Message) -> None:
        self._inner.on_message(ctx, sender, message)

    def on_round_timeout(self, ctx: ProcessContext, round_number: int) -> None:
        self._inner.on_round_timeout(ctx, round_number)

    def describe(self) -> str:
        return f"HonestWithCorruptedInput({self._inner.describe()})"


class ByzantineFaultPlan(FaultPlan):
    """Replace the given processes with Byzantine behaviours."""

    def __init__(self, behaviours: Dict[int, Process]) -> None:
        self._behaviours = dict(behaviours)

    @property
    def behaviours(self) -> Dict[int, Process]:
        """The configured replacements (used by the round-level adapter)."""
        return dict(self._behaviours)

    def faulty_ids(self, n: int) -> Sequence[int]:
        return tuple(sorted(pid for pid in self._behaviours if pid < n))

    def byzantine_ids(self, n: int) -> Sequence[int]:
        return self.faulty_ids(n)

    def replacement_process(self, process_id: int, original: Process) -> Optional[Process]:
        return self._behaviours.get(process_id)

    def describe(self) -> str:
        parts = ", ".join(
            f"P{pid}:{proc.describe()}" for pid, proc in sorted(self._behaviours.items())
        )
        return f"ByzantineFaultPlan({parts})"


class ComposedFaultPlan(FaultPlan):
    """Union of several fault plans (e.g. some crashes plus some Byzantine)."""

    def __init__(self, plans: Sequence[FaultPlan]) -> None:
        self._plans = list(plans)

    @property
    def plans(self) -> Sequence[FaultPlan]:
        """The composed plans (used by the round-level adapter)."""
        return tuple(self._plans)

    def faulty_ids(self, n: int) -> Sequence[int]:
        ids: Set[int] = set()
        for plan in self._plans:
            ids.update(plan.faulty_ids(n))
        return tuple(sorted(ids))

    def byzantine_ids(self, n: int) -> Sequence[int]:
        ids: Set[int] = set()
        for plan in self._plans:
            ids.update(plan.byzantine_ids(n))
        return tuple(sorted(ids))

    def replacement_process(self, process_id: int, original: Process) -> Optional[Process]:
        for plan in self._plans:
            replacement = plan.replacement_process(process_id, original)
            if replacement is not None:
                return replacement
        return None

    def crashes_before_send(self, process_id: int, messages_sent: int, now: float) -> bool:
        return any(
            plan.crashes_before_send(process_id, messages_sent, now) for plan in self._plans
        )

    def describe(self) -> str:
        return "ComposedFaultPlan(" + " + ".join(plan.describe() for plan in self._plans) + ")"


# ----------------------------------------------------------------------
# Adversarial delay models
# ----------------------------------------------------------------------


class PartitionDelay(DelayModel):
    """Split the honest processes into two camps with slow cross-traffic.

    Messages within a camp arrive after ``fast`` time units; messages that
    cross the camp boundary arrive after ``slow`` time units.  With
    ``slow >> fast`` every process fills its per-round quorum almost entirely
    from its own camp, which maximises the divergence ``D`` between the value
    multisets of processes in different camps — the exact quantity the
    convergence lemma is stated in terms of.  This is the schedule used by the
    worst-case convergence experiments.
    """

    stateless = True

    def __init__(self, camp_a: Iterable[int], fast: float = 1.0, slow: float = 25.0) -> None:
        if fast <= 0 or slow <= 0:
            raise ValueError("delays must be positive")
        self.camp_a = frozenset(camp_a)
        self.fast = fast
        self.slow = slow

    def delay(self, sender: int, recipient: int, message: Message, now: float) -> float:
        same_camp = (sender in self.camp_a) == (recipient in self.camp_a)
        return self.fast if same_camp else self.slow

    def tensor_key(self) -> tuple:
        return ("partition", tuple(sorted(self.camp_a)), self.fast, self.slow)


class LaggardDelay(DelayModel):
    """Messages from the given senders are always slow.

    Permanently slow senders are effectively excluded from every quorum, which
    is how the adversary "uses up" its ``t`` omissions against asynchronous
    algorithms without corrupting anyone.
    """

    stateless = True

    def __init__(self, slow_senders: Iterable[int], fast: float = 1.0, slow: float = 50.0) -> None:
        if fast <= 0 or slow <= 0:
            raise ValueError("delays must be positive")
        self.slow_senders = frozenset(slow_senders)
        self.fast = fast
        self.slow = slow

    def delay(self, sender: int, recipient: int, message: Message, now: float) -> float:
        return self.slow if sender in self.slow_senders else self.fast

    def tensor_key(self) -> tuple:
        return ("laggard", tuple(sorted(self.slow_senders)), self.fast, self.slow)


class StaggeredExclusionDelay(DelayModel):
    """Per-recipient, per-round rotating exclusion of ``exclude`` senders.

    For the round-``r`` value message destined to recipient ``q``, the senders
    with identifiers ``(q + r) mod n, …, (q + r + exclude − 1) mod n`` are
    slowed down; everything else is fast.  Because the excluded set differs
    for every recipient (and rotates every round), different honest processes
    keep filling their quorums from *different* sender subsets round after
    round — the schedule that keeps the divergence ``D`` between honest
    samples maximal for the whole execution, rather than only in the first
    round as a static partition does.  This is the schedule used by the
    convergence benchmarks to push executions toward the worst-case
    contraction bound.

    ``stride`` and ``phase`` generalise the rotation: the excluded window
    for recipient ``q`` in round ``r`` starts at
    ``(q + stride*r + phase) mod n``.  The defaults ``stride=1, phase=0``
    are the historic schedule bit for bit; ``stride=0`` freezes the window
    per recipient (a static, recipient-dependent partition) and other
    strides skip around the ring — the schedule family the attack search
    (:mod:`repro.analysis.attacksearch`) optimises over.
    """

    stateless = True

    def __init__(
        self,
        n: int,
        exclude: int,
        fast: float = 1.0,
        slow: float = 50.0,
        stride: int = 1,
        phase: int = 0,
    ) -> None:
        if fast <= 0 or slow <= 0:
            raise ValueError("delays must be positive")
        if not 0 <= exclude < n:
            raise ValueError("exclude must be in [0, n)")
        self.n = n
        self.exclude = exclude
        self.fast = fast
        self.slow = slow
        self.stride = int(stride)
        self.phase = int(phase)

    def delay(self, sender: int, recipient: int, message: Message, now: float) -> float:
        if self.exclude == 0:
            return self.fast
        round_number = message.round if message.round is not None else 0
        start = (recipient + self.stride * round_number + self.phase) % self.n
        offset = (sender - start) % self.n
        return self.slow if offset < self.exclude else self.fast

    def tensor_key(self) -> tuple:
        return (
            "staggered-exclusion",
            self.n, self.exclude, self.fast, self.slow, self.stride, self.phase,
        )


class TargetedDelay(DelayModel):
    """Slow down specific (sender, recipient) pairs; everything else is fast.

    Lets tests construct hand-crafted schedules, e.g. ensuring that process 0
    never hears from process 1 before filling its quorum in any round.
    """

    stateless = True

    def __init__(
        self,
        slow_pairs: Iterable[tuple],
        fast: float = 1.0,
        slow: float = 50.0,
    ) -> None:
        if fast <= 0 or slow <= 0:
            raise ValueError("delays must be positive")
        self.slow_pairs = frozenset(tuple(pair) for pair in slow_pairs)
        self.fast = fast
        self.slow = slow

    def delay(self, sender: int, recipient: int, message: Message, now: float) -> float:
        return self.slow if (sender, recipient) in self.slow_pairs else self.fast

    def tensor_key(self) -> tuple:
        return ("targeted", tuple(sorted(self.slow_pairs)), self.fast, self.slow)


class PartitionReportDelay(DelayModel):
    """Partition-aware witness *report* schedule: slow cross-camp reports.

    The witness protocol's report exchange is the only traffic whose timing
    the schedule touches: a ``REPORT`` message crossing the camp boundary
    arrives after ``slow`` time units, everything else (the reliable-broadcast
    machinery, the direct protocols' ``VALUE`` rounds) after ``fast``.  With
    ``slow`` far beyond the reliable-broadcast completion time, every process
    fills its report/witness thresholds from its own camp first and stalls on
    the cross-camp reports — the partition shapes *when* each witness wait
    completes, maximally staggering decision times across the cut.

    Because a witness sample is the set of reliably-delivered values at the
    moment the witness condition fires — a set that only grows, and that is
    complete long before any cross-camp report lands — the schedule provably
    does *not* shape which values are sampled (``shapes_witness_samples`` is
    ``False``): the round-level witness form keeps its full-delivery
    schedule, and the event simulator under this model agrees with it
    exactly (``tests/sim/test_witness_partition.py``).  This is the
    delay-model-shaped witness adversary family the sweep exposes as
    ``"witness-partition"``.
    """

    stateless = True

    def __init__(
        self,
        camp_a: Iterable[int],
        fast: float = 1.0,
        slow: float = 200.0,
        report_kinds: Sequence[str] = ("REPORT",),
    ) -> None:
        if fast <= 0 or slow <= 0:
            raise ValueError("delays must be positive")
        self.camp_a = frozenset(camp_a)
        self.fast = fast
        self.slow = slow
        self.report_kinds = tuple(report_kinds)
        # The sample-invariance proof in the class docstring holds only when
        # nothing but the report exchange is slowed; a model configured to
        # delay sample-bearing kinds (RBC sub-messages, VALUE rounds) shapes
        # witness samples like any other delay model.
        self.shapes_witness_samples = not set(self.report_kinds) <= {"REPORT"}

    def delay(self, sender: int, recipient: int, message: Message, now: float) -> float:
        if message.kind not in self.report_kinds:
            return self.fast
        same_camp = (sender in self.camp_a) == (recipient in self.camp_a)
        return self.fast if same_camp else self.slow

    def tensor_key(self) -> tuple:
        # The full parameter set: two instances are one program only when
        # every delay they can produce agrees.  (With the default REPORT-only
        # kinds the round-level VALUE ranking is constant-fast regardless of
        # camps, but the grouping contract must hold for every configuration.)
        return (
            "partition-report",
            tuple(sorted(self.camp_a)),
            self.fast,
            self.slow,
            self.report_kinds,
        )


class SeededDelay(DelayModel):
    """Pseudo-random delays in ``[low, high]`` from a counter-based PRF.

    The stateless counterpart of
    :class:`~repro.net.network.UniformRandomDelay`: instead of drawing from a
    sequential RNG stream (whose answers depend on query *order*), every
    ``(round, recipient, sender)`` triple maps to one 64-bit mix — the same
    MurmurHash3-finalizer key schedule as :class:`SeededOmission`, on the
    decorrelated :data:`DELAY_STREAM` — scaled into ``[low, high]``.  Two
    consequences:

    * the event simulator and the round-level engines see the *same* delay
      for the same (round, sender, recipient) probe, so
      :class:`DelayRankOmission` over this model ranks exactly as the event
      scheduler would order arrivals;
    * :meth:`delay_block` answers a whole round in one bulk query, which is
      what lets the vectorised batch engine (:mod:`repro.sim.ndbatch`) run
      randomised-delay scenarios with zero per-recipient Python quorum calls.

    Repeated messages of one (round, sender, recipient) triple — e.g. the
    reliable-broadcast sub-messages of the witness protocol, which carry no
    round field and fall into the round-0 slot — share a delay, which is a
    legal (deterministic) adversarial schedule.
    """

    stateless = True

    def __init__(self, low: float = 0.5, high: float = 1.5, seed: int = 0) -> None:
        if low <= 0 or high < low:
            raise ValueError("require 0 < low <= high")
        self.low = float(low)
        self.high = float(high)
        self.seed = int(seed)
        self._seed_mix = mix64(self.seed ^ DELAY_STREAM)

    def delay(self, sender: int, recipient: int, message: Message, now: float) -> float:
        round_number = message.round if message.round is not None else 0
        key = mix64(
            self._seed_mix
            ^ (round_number * KEY_ROUND)
            ^ (recipient * KEY_RECIPIENT)
            ^ (sender * KEY_SENDER)
        )
        return self.low + (self.high - self.low) * (key * 2.0**-64)

    def tensor_key(self) -> tuple:
        return ("seeded-delay", self.low, self.high)

    def tensor_seed(self) -> int:
        return self._seed_mix

    def delay_tensor(self, round_number: int, n: int, seed_mix):
        """Whole-block delay tensor ``delays[e, recipient, sender]``.

        Vectorised over the per-execution seed axis; every row is
        bit-identical to probing :meth:`delay` pair by pair.  Backend
        follows ``seed_mix`` (uint64 arithmetic required).
        """
        from repro.core.backend import array_namespace

        xp = array_namespace(seed_mix)
        xp.require_uint64("SeededDelay's counter-based PRF draws")
        recipients = xp.arange(n, dtype=xp.uint64) * xp.uint64(KEY_RECIPIENT)
        senders = xp.arange(n, dtype=xp.uint64) * xp.uint64(KEY_SENDER)
        keys = _np_mix64(
            xp.asarray(seed_mix, dtype=xp.uint64)[:, None, None]
            ^ xp.uint64((round_number * KEY_ROUND) & MASK64)
            ^ recipients[None, :, None]
            ^ senders[None, None, :]
        )
        return self.low + (self.high - self.low) * (keys.astype(xp.float64) * 2.0**-64)

    def delay_block(self, round_number: int, n: int):
        """The round's full delay matrix ``delays[recipient][sender]``.

        Derived from :meth:`delay_tensor` — a one-execution block, its only
        row sliced out — so the scalar and block paths share one
        implementation; bit-identical to probing :meth:`delay` per pair
        (scalar Python fallback when numpy is unavailable).  Consumed by
        :meth:`DelayRankOmission.rank_block` for the vectorised engine.
        """
        try:
            import numpy as np
        except ImportError:
            probe = Message(kind="VALUE", round=round_number, value=0.0)
            now = float(round_number)
            return [
                [self.delay(sender, recipient, probe, now) for sender in range(n)]
                for recipient in range(n)
            ]
        seeds = np.asarray([self._seed_mix], dtype=np.uint64)
        return self.delay_tensor(round_number, n, seeds)[0]


# ----------------------------------------------------------------------
# Round-level adversary adapters (batch engine)
# ----------------------------------------------------------------------
#
# The round-level batch engine (:mod:`repro.sim.batch`) never schedules
# individual messages, so the three adversary powers must be re-expressed at
# round granularity:
#
# * message scheduling becomes an :class:`OmissionPolicy` — for every
#   (round, recipient) it decides *which* senders' values fill the quorum;
# * fault selection and Byzantine behaviour become a :class:`RoundFaultModel`
#   — per-process crash rounds (with mid-multicast prefixes), equivocating
#   value strategies, silent processes and corrupted inputs.
#
# :func:`round_fault_model` and :class:`DelayRankOmission` translate the
# *message-level* specs above (fault plans, delay models) into these
# round-level forms, so one adversary description drives both engines.


class OmissionPolicy(abc.ABC):
    """Round-level message-scheduling adversary.

    For every (round, recipient) pair the policy chooses which ``m`` of the
    candidate senders fill the recipient's quorum; the remaining candidates
    are "late" — their messages exist but arrive after the quorum is full,
    which is all the asynchronous model lets an adversary do to an honest
    message.  Any answer is a legal asynchronous schedule, so the protocol
    guarantees must hold for every policy.
    """

    @abc.abstractmethod
    def quorum(
        self, round_number: int, recipient: int, candidates: Sequence[int], m: int
    ) -> Sequence[int]:
        """Choose ``m`` distinct senders from ``candidates`` (sorted by id)."""

    def rank_block(self, round_number: int, n: int) -> Optional[List[List[float]]]:
        """Vector-friendly form of :meth:`quorum` for one whole round.

        Returns an ``n × n`` matrix ``rank[recipient][sender]`` such that the
        quorum of every recipient is the ``m`` candidates with the smallest
        ``(rank, sender)`` pairs — i.e. one bulk query answers every quorum of
        the round, which is what lets the numpy batch engine
        (:mod:`repro.sim.ndbatch`) select whole blocks of quorums with one
        sort.  Policies whose choices cannot be expressed as a per-round
        ranking (or that are stateful in query order) return ``None``; the
        engine then falls back to per-recipient :meth:`quorum` calls.

        The contract ties the two forms together: for every recipient ``q``
        and candidate set ``C``, ``quorum(r, q, C, m)`` must equal the ``m``
        elements of ``C`` minimising ``(rank[q][s], s)``.  The vector engine
        compares ranks as ``float64``, so ranks should be exactly
        representable as doubles (:class:`SeededOmission` bypasses this
        method with a native uint64 path).
        """
        return None

    def tensor_key(self) -> Optional[tuple]:
        """Hashable fault-program identity of this policy, or ``None``.

        Mirrors :meth:`ByzantineValueStrategy.tensor_key`: policies sharing a
        key realise the same quorum program, with per-execution variation
        carried entirely by the PRF seed (:meth:`tensor_seed`), so one
        representative answers :meth:`rank_tensor` for a whole execution
        block.  ``None`` (the default) means no tensor form.
        """
        return None

    def tensor_seed(self) -> int:
        """Per-execution pre-mixed PRF seed consumed by :meth:`rank_tensor`."""
        return 0

    def rank_tensor(self, round_number: int, n: int, seed_mix):
        """Whole-block rank tensor ``rank[e, recipient, sender]``.

        ``seed_mix`` is a length-``E`` uint64 vector of per-execution seeds
        (:meth:`tensor_seed`); the result has shape ``(E, n, n)`` and each
        row must satisfy the :meth:`rank_block` contract for the execution it
        describes — the quorum of every recipient is the ``m`` candidates
        with the smallest ``(rank, sender)`` pairs.  Returns ``None`` when
        the policy has no tensor form.  Requires numpy.
        """
        return None

    def reset(self) -> None:
        """Reset internal state before a fresh execution (optional)."""

    def describe(self) -> str:
        return type(self).__name__


#: 64-bit mask and the multiplicative constants of the MurmurHash3 finalizer.
#: These are shared, by name, with the numpy reimplementation in
#: :mod:`repro.sim.ndbatch`; the two implementations must agree bit for bit
#: (guarded by ``tests/sim/test_ndbatch.py``).
MASK64 = (1 << 64) - 1
MIX64_MULT1 = 0xFF51AFD7ED558CCD
MIX64_MULT2 = 0xC4CEB9FE1A85EC53
#: Odd constants decorrelating the (seed, round, recipient, sender) axes of
#: the quorum rank keys before mixing.
KEY_ROUND = 0x9E3779B97F4A7C15
KEY_RECIPIENT = 0xC2B2AE3D27D4EB4F
KEY_SENDER = 0x165667B19E3779F9
#: Stream constants xor-folded into the seed so that the three counter-based
#: PRF families — quorum rank keys (:class:`SeededOmission`), Byzantine value
#: draws (:class:`RandomValueStrategy`) and delay draws (:class:`SeededDelay`)
#: — are decorrelated even when built from the same scenario seed.
VALUE_STREAM = 0xA24BAED4963EE407
DELAY_STREAM = 0x9FB21C651E98DF25


def mix64(x: int) -> int:
    """The 64-bit MurmurHash3 finalizer (a strong, invertible bit mixer)."""
    x &= MASK64
    x = ((x ^ (x >> 33)) * MIX64_MULT1) & MASK64
    x = ((x ^ (x >> 33)) * MIX64_MULT2) & MASK64
    return x ^ (x >> 33)


def _np_mix64(x):
    """Vectorised :func:`mix64` over uint64 arrays — the single array
    implementation behind every PRF tensor (rank keys, value draws, delay
    draws), bit-identical to the scalar mixer by construction.  Runs on any
    backend with numpy-semantics uint64 arithmetic (numpy, cupy); backends
    without it (torch) are refused loudly."""
    from repro.core.backend import array_namespace

    xp = array_namespace(x)
    xp.require_uint64("the PRF mix kernel (_np_mix64)")
    shift = xp.uint64(33)
    x = (x ^ (x >> shift)) * xp.uint64(MIX64_MULT1)
    x = (x ^ (x >> shift)) * xp.uint64(MIX64_MULT2)
    return x ^ (x >> shift)


#: The low bits of every rank key hold the sender id (see below).
SENDER_BITS = 16
SENDER_MASK = (1 << SENDER_BITS) - 1


def seeded_rank_key(seed_mix: int, round_number: int, recipient: int, sender: int) -> int:
    """Rank key of ``sender`` for ``(round, recipient)`` under :class:`SeededOmission`.

    ``seed_mix`` is ``mix64(seed)``, precomputed once per execution.  The key
    schedule is a two-stage counter-based PRF: one mix combines the round and
    recipient, a second mixes in the sender.  The low :data:`SENDER_BITS`
    bits of the mixed value are then *replaced by the sender id*, which makes
    every key in a ``(round, recipient)`` row unique by construction: sorting
    by key alone is a total order with the by-sender tie-break built in, so
    selection needs no stable sort and no tuple keys — on either engine.

    Being a pure function of its arguments (no RNG stream), the same formula
    is evaluated per scalar here and over whole
    ``(executions, recipients, senders)`` tensors in
    :mod:`repro.sim.ndbatch`, which is what lets the numpy engine reproduce
    the Python engine's quorums exactly.
    """
    slot = mix64(seed_mix ^ (round_number * KEY_ROUND) ^ (recipient * KEY_RECIPIENT))
    return (mix64(slot ^ (sender * KEY_SENDER)) & ~SENDER_MASK) | sender


def seeded_rank_key_block(seed_mix, round_number: int, n: int):
    """Vectorised :func:`seeded_rank_key` over whole key matrices (numpy).

    ``seed_mix`` is a pre-mixed seed — a scalar or an array of any shape —
    and the result has shape ``seed_mix.shape + (n, n)`` with
    ``keys[..., recipient, sender]`` equal to the scalar function bit for
    bit (guarded by ``tests/sim/test_ndbatch.py``).  This is the single
    vectorised implementation of the PRF: :class:`SeededOmission`'s
    per-round key cache evaluates it for one seed, the ndbatch engine for a
    whole block of seeds — keeping the two engines' quorums identical by
    construction rather than by parallel maintenance.

    Requires an array backend with uint64 arithmetic — numpy by default,
    cupy when ``seed_mix`` lives on a device (imported lazily; scalar
    callers fall back to :func:`seeded_rank_key`).
    """
    from repro.core.backend import array_namespace

    if n > SENDER_MASK:
        raise ValueError(
            f"quorum rank keys embed the sender id in {SENDER_BITS} bits; "
            f"n={n} processes exceed that"
        )
    xp = array_namespace(seed_mix)
    xp.require_uint64("seeded_rank_key_block's counter-based PRF keys")
    seed = xp.asarray(seed_mix, dtype=xp.uint64)
    round_part = xp.uint64((round_number * KEY_ROUND) & MASK64)
    recipients = xp.arange(n, dtype=xp.uint64) * xp.uint64(KEY_RECIPIENT)
    senders = xp.arange(n, dtype=xp.uint64) * xp.uint64(KEY_SENDER)
    slot = _np_mix64(seed[..., None] ^ round_part ^ recipients)
    mixed = _np_mix64(slot[..., :, None] ^ senders)
    return (mixed & xp.uint64(MASK64 ^ SENDER_MASK)) | xp.arange(n, dtype=xp.uint64)


class SeededOmission(OmissionPolicy):
    """Pseudo-random quorum composition from an explicit seed.

    Every ``(round, recipient, sender)`` triple is assigned a 64-bit rank key
    by a counter-based PRF (:func:`seeded_rank_key`); the quorum is the ``m``
    candidates with the smallest keys.  Because the keys are a pure function
    of ``(seed, round, recipient, sender)``, identical seeds reproduce
    identical quorum sequences regardless of query order — a strictly
    stronger form of the determinism guarantee the sweep pool rests on — and
    the numpy batch engine can evaluate the same keys for whole execution
    blocks at once.  ``reset`` is a no-op (the policy's answers are a pure
    function; the only internal state is a per-round key cache).

    The engines query all ``n`` recipients of a round back to back, so the
    policy computes the round's whole key matrix once and answers each quorum
    with a C-level keyed sort — this path has to stay cheap because it *is*
    the hot loop of :mod:`repro.sim.batch`.

    ``use_numpy`` selects how the key matrix is computed: ``None`` (default)
    uses numpy when importable and falls back to scalar Python otherwise;
    ``False`` forces the scalar path (the truly numpy-free configuration —
    what :mod:`repro.sim.batch` amounts to on machines without numpy, and
    the baseline the engine benchmarks quote); ``True`` requires numpy.  The
    computed keys are bit-identical either way.
    """

    def __init__(self, seed: int = 0, use_numpy: Optional[bool] = None) -> None:
        self.seed = int(seed)
        self.use_numpy = use_numpy
        self._seed_mix = mix64(self.seed)
        self._cached_round: Optional[int] = None
        self._cached_size = 0
        self._cached_keys: List[List[int]] = []

    def _round_keys(self, round_number: int, size: int) -> List[List[int]]:
        """Key matrix ``keys[recipient][sender]`` for one round.

        Keys do not depend on the matrix size, so a larger cached matrix
        serves smaller queries; the cache is refreshed when the round changes
        or a bigger process id appears.
        """
        if self._cached_round != round_number or self._cached_size < size:
            self._cached_keys = self._compute_keys(round_number, size)
            self._cached_round = round_number
            self._cached_size = size
        return self._cached_keys

    def _compute_keys(self, round_number: int, size: int) -> List[List[int]]:
        if size > SENDER_MASK:
            raise ValueError(
                f"SeededOmission rank keys embed the sender id in {SENDER_BITS} "
                f"bits; n={size} processes exceed that"
            )
        if self.use_numpy is False:
            np = None
        else:
            try:
                import numpy as np
            except ImportError:
                np = None
                if self.use_numpy:
                    raise ValueError("use_numpy=True but numpy is not importable")
        if np is None:
            seed_mix = self._seed_mix
            return [
                [
                    seeded_rank_key(seed_mix, round_number, recipient, sender)
                    for sender in range(size)
                ]
                for recipient in range(size)
            ]
        # Derived from the tensor path — a one-execution block, its only row
        # sliced out — so this cache and the ndbatch engine share one PRF
        # implementation and stay bit-identical by construction.
        seeds = np.asarray([self._seed_mix], dtype=np.uint64)
        return self.rank_tensor(round_number, size, seeds)[0].tolist()

    def quorum(
        self, round_number: int, recipient: int, candidates: Sequence[int], m: int
    ) -> Sequence[int]:
        size = max(recipient, max(candidates)) + 1 if candidates else recipient + 1
        keys = self._round_keys(round_number, size)[recipient]
        # Keys embed the sender id in their low bits (seeded_rank_key), so
        # they are unique within the row and sorting by key alone is already
        # the full (PRF value, sender) order — no tuples, no stability needed.
        return sorted(candidates, key=keys.__getitem__)[:m]

    def rank_block(self, round_number: int, n: int) -> List[List[int]]:
        """All rank keys of one round (exact integers; see :func:`seeded_rank_key`)."""
        return [row[:n] for row in self._round_keys(round_number, n)[:n]]

    def tensor_key(self) -> tuple:
        return ("seeded-omission",)

    def tensor_seed(self) -> int:
        return self._seed_mix

    def rank_tensor(self, round_number: int, n: int, seed_mix):
        """Whole-block uint64 rank keys (see :func:`seeded_rank_key_block`).

        Keys embed the sender id in their low :data:`SENDER_BITS` bits, so
        rows are tie-free and sorting key values alone is quorum selection.
        """
        return seeded_rank_key_block(seed_mix, round_number, n)

    def reset(self) -> None:
        return None

    def describe(self) -> str:
        return f"SeededOmission(seed={self.seed})"


class DelayRankOmission(OmissionPolicy):
    """Quorums filled by the ``m`` candidates with the smallest modelled delays.

    This is the round-level shadow of running the event simulator under
    ``delay_model``: when every sender multicasts its round-``r`` value at
    (approximately) the same instant, the first ``m`` arrivals at a recipient
    are exactly the ``m`` senders with the smallest delays.  Ties break by
    sender identifier, matching the deterministic tie-breaking of the event
    scheduler under constant delays.  Adversarial delay models such as
    :class:`PartitionDelay`, :class:`LaggardDelay` and
    :class:`StaggeredExclusionDelay` therefore shape batch-engine quorums the
    same way they shape event-simulator quorums.
    """

    def __init__(self, delay_model: DelayModel) -> None:
        self.delay_model = delay_model

    def quorum(
        self, round_number: int, recipient: int, candidates: Sequence[int], m: int
    ) -> Sequence[int]:
        probe = Message(kind="VALUE", round=round_number, value=0.0)
        now = float(round_number)
        ranked = sorted(
            candidates,
            key=lambda sender: (self.delay_model.delay(sender, recipient, probe, now), sender),
        )
        return ranked[:m]

    def tensor_key(self) -> Optional[tuple]:
        key = self.delay_model.tensor_key()
        return None if key is None else ("delay-rank",) + key

    def tensor_seed(self) -> int:
        return self.delay_model.tensor_seed()

    def rank_tensor(self, round_number: int, n: int, seed_mix):
        """Whole-block delay tensor as ranks (see :meth:`DelayModel.delay_tensor`).

        One bulk query answers every quorum of the round for a whole block of
        executions: deterministic models probe their ``n × n`` matrix once
        and broadcast, PRF models (:class:`SeededDelay`) vectorise over the
        seed axis.
        """
        return self.delay_model.delay_tensor(round_number, n, seed_mix)

    def rank_block(self, round_number: int, n: int) -> Optional[List[List[float]]]:
        """The round's full delay matrix, for stateless delay models.

        A stateless model (``delay_model.stateless``) answers every
        ``(sender, recipient)`` probe of the round independently of query
        order, so one bulk evaluation is exactly equivalent to the
        per-recipient ranking of :meth:`quorum`.  Tensor-programmed models
        answer through :meth:`rank_tensor` (a one-execution block, its only
        row sliced out — one shared implementation with the vectorised
        engine); bulk-queryable models (``delay_block``) answer the round
        natively; everything else is probed pair by pair.  Stateful models
        (e.g. :class:`~repro.net.network.UniformRandomDelay`, which draws
        from an RNG stream per call) return ``None`` and keep the
        per-recipient path.
        """
        if not getattr(self.delay_model, "stateless", False):
            return None
        if self.tensor_key() is not None:
            try:
                import numpy as np
            except ImportError:
                np = None
            if np is not None:
                seeds = np.asarray([self.tensor_seed()], dtype=np.uint64)
                return self.rank_tensor(round_number, n, seeds)[0]
        block = getattr(self.delay_model, "delay_block", None)
        if block is not None:
            # Bulk-queryable models answer the whole round natively —
            # bit-identical to the per-pair probing below.
            return block(round_number, n)
        probe = Message(kind="VALUE", round=round_number, value=0.0)
        now = float(round_number)
        return [
            [self.delay_model.delay(sender, recipient, probe, now) for sender in range(n)]
            for recipient in range(n)
        ]

    def reset(self) -> None:
        self.delay_model.reset()

    def describe(self) -> str:
        return f"DelayRankOmission({type(self.delay_model).__name__})"


@dataclass(frozen=True)
class RoundFaultModel:
    """Round-level description of an execution's faults.

    Attributes
    ----------
    crash_schedule:
        Maps a crash-faulty process id to ``(crash_round, deliveries)``: the
        process behaves honestly in rounds before ``crash_round``, its
        round-``crash_round`` multicast reaches only recipients with
        identifiers below ``deliveries`` (multicasts send in increasing
        recipient order), and it is silent afterwards.
    strategies:
        Maps a Byzantine process id to the :class:`ByzantineValueStrategy`
        deciding the (possibly equivocated) value it reports per
        (round, recipient).
    silent:
        Byzantine processes that never send anything.
    corrupted_inputs:
        Byzantine processes that follow the honest protocol but start from a
        forged input value.
    """

    crash_schedule: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    strategies: Dict[int, ByzantineValueStrategy] = field(default_factory=dict)
    silent: frozenset = frozenset()
    corrupted_inputs: Dict[int, float] = field(default_factory=dict)

    def faulty_ids(self, n: int) -> Tuple[int, ...]:
        ids = set(self.crash_schedule) | set(self.strategies) | set(self.silent)
        ids |= set(self.corrupted_inputs)
        return tuple(sorted(pid for pid in ids if pid < n))

    def byzantine_ids(self, n: int) -> Tuple[int, ...]:
        ids = set(self.strategies) | set(self.silent) | set(self.corrupted_inputs)
        return tuple(sorted(pid for pid in ids if pid < n))

    def describe(self) -> str:
        parts = []
        for pid, (round_number, deliveries) in sorted(self.crash_schedule.items()):
            parts.append(f"P{pid}:crash@r{round_number}+{deliveries}")
        for pid, strategy in sorted(self.strategies.items()):
            parts.append(f"P{pid}:{strategy.describe()}")
        for pid in sorted(self.silent):
            parts.append(f"P{pid}:silent")
        for pid, forged in sorted(self.corrupted_inputs.items()):
            parts.append(f"P{pid}:input={forged}")
        return "RoundFaultModel(" + ", ".join(parts) + ")"


def round_fault_model(fault_plan: Optional[FaultPlan], n: int) -> RoundFaultModel:
    """Translate a message-level :class:`FaultPlan` into a :class:`RoundFaultModel`.

    Supports every fault plan shipped with the library — crash plans
    (including mid-multicast crash points), Byzantine plans built from
    :class:`RoundEchoByzantine`, :class:`SilentProcess` or
    :class:`HonestWithCorruptedInput`, and compositions thereof.  A plan the
    adapter cannot interpret raises :class:`ValueError`; callers with custom
    behaviours can construct a :class:`RoundFaultModel` directly instead.
    """
    if fault_plan is None:
        return RoundFaultModel()

    crash_schedule: Dict[int, Tuple[int, int]] = {}
    strategies: Dict[int, ByzantineValueStrategy] = {}
    silent: Set[int] = set()
    corrupted_inputs: Dict[int, float] = {}

    def absorb(plan: FaultPlan) -> None:
        if isinstance(plan, NoFaults):
            return
        if isinstance(plan, ComposedFaultPlan):
            for sub_plan in plan.plans:
                absorb(sub_plan)
            return
        if isinstance(plan, CrashFaultPlan):
            for pid, point in plan.crash_points.items():
                if pid >= n or point.after_sends is None:
                    continue
                crash_round, deliveries = divmod(point.after_sends, n)
                crash_schedule[pid] = (crash_round + 1, deliveries)
            return
        if isinstance(plan, ByzantineFaultPlan):
            for pid, behaviour in plan.behaviours.items():
                if pid >= n:
                    continue
                if isinstance(behaviour, RoundEchoByzantine):
                    strategies[pid] = behaviour.strategy
                elif isinstance(behaviour, SilentProcess):
                    silent.add(pid)
                elif isinstance(behaviour, HonestWithCorruptedInput):
                    forged = getattr(behaviour.inner, "input_value", None)
                    if forged is None:
                        raise ValueError(
                            "cannot adapt HonestWithCorruptedInput: the wrapped process "
                            "exposes no input_value"
                        )
                    corrupted_inputs[pid] = float(forged)
                else:
                    raise ValueError(
                        f"cannot adapt Byzantine behaviour {behaviour.describe()!r} to the "
                        "round level; build a RoundFaultModel directly"
                    )
            return
        raise ValueError(
            f"cannot adapt fault plan {plan.describe()!r} to the round level; "
            "build a RoundFaultModel directly"
        )

    absorb(fault_plan)
    return RoundFaultModel(
        crash_schedule=crash_schedule,
        strategies=strategies,
        silent=frozenset(silent),
        corrupted_inputs=corrupted_inputs,
    )
